"""Hand-written rule libraries: R1-R3 and C4-C7 semantics."""

import pytest

from repro.data import TelemetryConfig
from repro.rules import domain_bound_rules, paper_rules, zoom2net_manual_rules


CONFIG = TelemetryConfig()  # T=5, BW=60


def record(fine, total=None, cong=0, retx=0, egr=0):
    values = {"total": sum(fine) if total is None else total,
              "cong": cong, "retx": retx, "egr": egr}
    for index, value in enumerate(fine):
        values[f"I{index}"] = value
    return values


class TestPaperRules:
    def setup_method(self):
        self.rules = paper_rules(CONFIG)

    def test_rule_names(self):
        names = [r.name for r in self.rules]
        assert names == ["R1[0]", "R1[1]", "R1[2]", "R1[3]", "R1[4]", "R2", "R3"]

    def test_paper_invalid_example_violates(self):
        # Fig. 1a: [20, 15, 25, 70, 8] with Total=100, Congestion=8.
        values = record([20, 15, 25, 70, 8], total=100, cong=8)
        broken = {r.name for r in self.rules.violations(values)}
        assert "R1[3]" in broken  # 70 > BW
        assert "R2" in broken  # sum 138 != 100

    def test_paper_valid_example_complies(self):
        # Fig. 1b: LeJIT's output [20, 15, 25, 39, 1].
        values = record([20, 15, 25, 39, 1], total=100, cong=8)
        assert self.rules.compliant(values)

    def test_r3_requires_burst_under_congestion(self):
        values = record([20, 20, 20, 20, 20], cong=3)
        broken = {r.name for r in self.rules.violations(values)}
        assert broken == {"R3"}

    def test_r3_vacuous_without_congestion(self):
        values = record([20, 20, 20, 20, 20], cong=0)
        assert self.rules.compliant(values)

    def test_r1_lower_bound(self):
        values = record([-1, 20, 20, 20, 41], cong=0)
        broken = {r.name for r in self.rules.violations(values)}
        assert "R1[0]" in broken


class TestManualRules:
    def setup_method(self):
        self.rules = zoom2net_manual_rules(CONFIG)

    def test_four_rules(self):
        assert [r.name for r in self.rules] == ["C4", "C5", "C6", "C7"]

    def test_c4_bandwidth(self):
        assert not self.rules["C4"].holds(record([61, 0, 0, 0, 0], total=61))
        assert self.rules["C4"].holds(record([60, 0, 0, 0, 0], total=60))

    def test_c5_sum(self):
        assert not self.rules["C5"].holds(record([1, 1, 1, 1, 1], total=9))

    def test_c6_burst(self):
        assert not self.rules["C6"].holds(record([10, 10, 10, 10, 10], cong=2))
        assert self.rules["C6"].holds(record([35, 5, 0, 5, 5], cong=2))

    def test_c7_egress_cap(self):
        good = record([0, 0, 0, 0, 0], egr=CONFIG.max_egress())
        bad = record([0, 0, 0, 0, 0], egr=CONFIG.max_egress() + 1)
        assert self.rules["C7"].holds(good)
        assert not self.rules["C7"].holds(bad)


class TestDomainRules:
    def test_covers_all_variables(self):
        rules = domain_bound_rules(CONFIG)
        assert len(rules) == 4 + CONFIG.window

    def test_domain_violation(self):
        rules = domain_bound_rules(CONFIG)
        values = record([0, 0, 0, 0, 0], total=301)
        assert not rules.compliant(values)
