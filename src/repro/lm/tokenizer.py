"""Character-level tokenization for telemetry records.

The paper adopts character-level tokenization (Charformer-style, [44]) so
numbers are generated digit by digit -- the granularity LeJIT's transition
system controls.  Telemetry records here are plain text over a tiny charset:
digits, the space field separator, the prompt separator ``>``, and the
record terminator ``\\n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["CharTokenizer", "DIGITS", "FIELD_SEP", "PROMPT_SEP", "RECORD_END"]

DIGITS = "0123456789"
FIELD_SEP = " "
PROMPT_SEP = ">"
RECORD_END = "\n"


@dataclass(frozen=True)
class CharTokenizer:
    """Bidirectional char <-> id mapping with BOS/PAD specials."""

    alphabet: str = DIGITS + FIELD_SEP + PROMPT_SEP + RECORD_END

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def bos_id(self) -> int:
        return 1

    @property
    def vocab_size(self) -> int:
        return 2 + len(self.alphabet)

    def id_of(self, char: str) -> int:
        index = self.alphabet.find(char)
        if index < 0:
            raise KeyError(f"character {char!r} not in tokenizer alphabet")
        return 2 + index

    def char_of(self, token_id: int) -> str:
        if token_id < 2:
            return ""
        if token_id - 2 >= len(self.alphabet):
            raise KeyError(f"token id {token_id} out of range")
        return self.alphabet[token_id - 2]

    def encode(self, text: str, add_bos: bool = True) -> List[int]:
        ids = [self.bos_id] if add_bos else []
        ids.extend(self.id_of(c) for c in text)
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        return "".join(self.char_of(i) for i in ids)

    def digit_ids(self) -> Tuple[int, ...]:
        return tuple(self.id_of(d) for d in DIGITS)

    @property
    def field_sep_id(self) -> int:
        return self.id_of(FIELD_SEP)

    @property
    def prompt_sep_id(self) -> int:
        return self.id_of(PROMPT_SEP)

    @property
    def record_end_id(self) -> int:
        return self.id_of(RECORD_END)
