"""Stdlib HTTP client for the serving API (used by the load harness & CI).

Maps the server's status codes back onto the typed error taxonomy, so a
caller handles backpressure and deadlines the same way whether it talks to
an in-process scheduler or a remote server::

    client = ServeClient("127.0.0.1", 8080)
    try:
        reply = client.impute({"total": 50, "cong": 0, "retx": 0, "egr": 50},
                              seed=13, timeout_ms=2000)
    except QueueFull:          # 429 -- back off and retry
        ...
    except DeadlineExceeded:   # 504 -- the request blew its deadline
        ...
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import Dict, Iterable, Iterator, Mapping, Optional

from ..errors import (
    DeadlineExceeded,
    InfeasibleRecord,
    QueueFull,
    ReproError,
    ServerClosed,
)

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """An HTTP-level failure that maps to no more specific typed error."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


_STATUS_ERRORS = {
    429: QueueFull,
    504: DeadlineExceeded,
    422: InfeasibleRecord,
    503: ServerClosed,
}


class ServeClient:
    """Blocking JSON client over :mod:`urllib` (zero dependencies)."""

    def __init__(self, host: str, port: int, timeout: float = 300.0):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # -- API calls -------------------------------------------------------------

    def impute(
        self,
        coarse: Mapping[str, int],
        context: Optional[Mapping[str, int]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        payload: Dict[str, object] = {"coarse": dict(coarse)}
        _put_optional(payload, context=context, seed=seed,
                      priority=priority, timeout_ms=timeout_ms)
        return self._request("POST", "/v1/impute", payload)

    def synthesize(
        self,
        count: int = 1,
        context: Optional[Mapping[str, int]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        payload: Dict[str, object] = {"count": count}
        _put_optional(payload, context=context, seed=seed,
                      priority=priority, timeout_ms=timeout_ms)
        return self._request("POST", "/v1/synthesize", payload)

    def stream(
        self,
        events: Iterable[Mapping[str, object]],
        seed: int = 0,
        window: int = 2,
        lateness: float = 0.5,
        late_policy: str = "drop",
        rule_set: Optional[str] = None,
        stream_id: Optional[str] = None,
        chunked: bool = False,
    ) -> Iterator[Dict]:
        """``POST /v1/stream``: yields one parsed emission per record.

        With ``chunked=False`` the whole event list is materialized and
        sent with a ``Content-Length`` (replay of a recorded stream); with
        ``chunked=True`` each event goes out as its own transfer chunk,
        the way a live follower that cannot know its length would send
        them.  Either way the response is consumed incrementally, so
        emissions arrive as the server produces them.  The emission bytes
        are identical under both modes -- that is the subsystem's
        determinism contract, and the stream tests diff it.
        """
        header: Dict[str, object] = {
            "seed": seed,
            "window": window,
            "lateness": lateness,
            "late_policy": late_policy,
        }
        if rule_set is not None:
            header["rule_set"] = rule_set
        if stream_id is not None:
            header["stream_id"] = stream_id
        lines = [json.dumps(header).encode()] + [
            json.dumps(dict(event)).encode() for event in events
        ]
        host, port = self.base_url[len("http://"):].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=self.timeout)
        try:
            if chunked:
                conn.putrequest("POST", "/v1/stream")
                conn.putheader("Content-Type", "application/x-ndjson")
                conn.putheader("Transfer-Encoding", "chunked")
                conn.endheaders()
                for line in lines:
                    data = line + b"\n"
                    conn.send(f"{len(data):X}\r\n".encode("ascii"))
                    conn.send(data)
                    conn.send(b"\r\n")
                conn.send(b"0\r\n\r\n")
            else:
                conn.request(
                    "POST",
                    "/v1/stream",
                    body=b"\n".join(lines) + b"\n",
                    headers={"Content-Type": "application/x-ndjson"},
                )
            reply = conn.getresponse()
            if reply.status != 200:
                detail = _stream_error_detail(reply)
                error_cls = _STATUS_ERRORS.get(reply.status)
                if error_cls is not None:
                    raise error_cls(detail)
                raise ServeClientError(reply.status, detail)
            while True:
                line = reply.readline()  # http.client undoes the chunking
                if not line:
                    break
                if line.strip():
                    yield json.loads(line)
        finally:
            conn.close()

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    # -- transport -------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            detail = _error_detail(exc)
            error_cls = _STATUS_ERRORS.get(exc.code)
            if error_cls is not None:
                raise error_cls(detail) from None
            raise ServeClientError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(0, f"cannot reach server: {exc.reason}")


def _put_optional(payload: Dict[str, object], **fields) -> None:
    for key, value in fields.items():
        if value is not None:
            payload[key] = dict(value) if key == "context" else value


def _error_detail(exc: urllib.error.HTTPError) -> str:
    try:
        return json.loads(exc.read()).get("error", exc.reason)
    except Exception:  # noqa: BLE001 -- any malformed body falls back
        return str(exc.reason)


def _stream_error_detail(reply: "http.client.HTTPResponse") -> str:
    try:
        return json.loads(reply.read()).get("error", reply.reason)
    except Exception:  # noqa: BLE001 -- any malformed body falls back
        return str(reply.reason)
