"""End-to-end CLI workflow tests."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    data = root / "data.jsonl"
    model = root / "model.json"
    rules = root / "rules.json"
    assert main(["dataset", "--out", str(data), "--racks", "4",
                 "--windows", "40", "--seed", "1"]) == 0
    assert main(["train", "--data", str(data), "--out", str(model)]) == 0
    assert main(["mine", "--data", str(data), "--out", str(rules),
                 "--slack", "2"]) == 0
    return root, data, model, rules


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_output_is_jsonl(self, workspace):
        _, data, _, _ = workspace
        lines = data.read_text().strip().splitlines()
        assert len(lines) == 4 * 40
        record = json.loads(lines[0])
        assert "total" in record and "I0" in record

    def test_model_file_loadable(self, workspace):
        from repro.lm import load_ngram

        _, _, model_path, _ = workspace
        model = load_ngram(model_path)
        assert model.order == 6

    def test_rules_file_loadable(self, workspace):
        from repro.rules import load_rules

        _, _, _, rules_path = workspace
        rules = load_rules(rules_path)
        assert len(rules) > 50

    def test_impute_command(self, workspace, capsys):
        _, _, model, rules = workspace
        code = main([
            "impute", "--model", str(model), "--rules", str(rules),
            "--total", "50", "--cong", "0", "--retx", "0", "--egr", "50",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert sum(payload["fine"].values()) == 50  # sum rule enforced

    def test_synth_command(self, workspace, capsys):
        _, _, model, rules_path = workspace
        # Synthesis rules scope: mine them for this test.
        root = workspace[0]
        synth_rules = root / "synth_rules.json"
        assert main(["mine", "--data", str(workspace[1]), "--out",
                     str(synth_rules), "--scope", "synthesis"]) == 0
        capsys.readouterr()
        code = main(["synth", "--model", str(model), "--rules",
                     str(synth_rules), "-n", "3", "--seed", "0"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        from repro.rules import load_rules

        rules = load_rules(synth_rules)
        for line in lines:
            record = json.loads(line)
            assert rules.compliant(record)

    def test_empty_dataset_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["train", "--data", str(empty), "--out",
                  str(tmp_path / "m.json")])


class TestStreamCli:
    @pytest.fixture(scope="class")
    def stream_workspace(self, workspace, tmp_path_factory):
        root = tmp_path_factory.mktemp("stream")
        _, data, model, _ = workspace
        rules = root / "stream_rules.json"
        assert main(["mine", "--data", str(data), "--out", str(rules),
                     "--scope", "stream", "--slack", "2"]) == 0
        return root, data, model, rules

    def test_mine_stream_scope_adds_temporal_rules(self, stream_workspace):
        from repro.rules import load_rules

        rules = load_rules(stream_workspace[3])
        kinds = {rule.kind for rule in rules}
        assert any(kind.startswith("temporal-") for kind in kinds)
        assert "sum" in kinds  # the imputation rules ride along

    def test_generate_is_deterministic_jsonl(self, capsys):
        assert main(["stream", "--generate", "12", "--stream-seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["stream", "--generate", "12", "--stream-seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second
        events = [json.loads(line) for line in first.strip().splitlines()]
        assert len(events) == 12
        assert sorted(e["seq"] for e in events) == list(range(12))
        arrivals = [e["arrival_time"] for e in events]
        assert arrivals == sorted(arrivals)  # delivered in arrival order

    def test_enforce_replays_byte_identically(
        self, stream_workspace, capsys
    ):
        root, _, model, rules = stream_workspace
        events = root / "events.jsonl"
        assert main(["stream", "--generate", "8", "--stream-seed", "7",
                     "--late-fraction", "0.2"]) == 0
        events.write_text(capsys.readouterr().out)

        def run():
            code = main([
                "stream", "--model", str(model), "--rules", str(rules),
                "--input", str(events), "--late-policy", "patch",
                "--seed", "3", "--progress-every", "4",
            ])
            assert code == 0
            return capsys.readouterr()

        first, second = run(), run()
        assert first.out == second.out
        lines = first.out.strip().splitlines()
        assert len(lines) >= 8  # every event accounted for
        for line in lines:
            emission = json.loads(line)
            assert emission["kind"] in ("record", "late", "reemit")
            assert "watermark" in emission and "record" in emission
        assert "stream_summary" in first.err

    def test_enforce_stamps_deterministic_trace_id(
        self, stream_workspace, capsys
    ):
        from repro.obs import parse_kv
        from repro.obs.merge import stream_trace_id

        root, _, model, rules = stream_workspace
        events = root / "trace_events.jsonl"
        assert main(["stream", "--generate", "5", "--stream-seed", "2"]) == 0
        events.write_text(capsys.readouterr().out)
        assert main([
            "stream", "--model", str(model), "--rules", str(rules),
            "--input", str(events), "--late-policy", "patch", "--seed", "3",
        ]) == 0
        captured = capsys.readouterr()
        expected = stream_trace_id("stream-3", 3)
        for line in captured.out.strip().splitlines():
            assert json.loads(line)["trace"] == expected
        summary = next(
            line for line in captured.err.splitlines()
            if "stream_summary" in line
        )
        _, pairs = parse_kv(summary)
        assert pairs["trace"] == expected

    def test_enforce_requires_model_and_rules(self):
        with pytest.raises(SystemExit):
            main(["stream", "--input", "-"])


class TestObservabilityCli:
    def test_impute_trace_out_then_trace_report(
        self, workspace, tmp_path, capsys
    ):
        _, _, model, rules = workspace
        trace = tmp_path / "trace.jsonl"
        code = main([
            "impute", "--model", str(model), "--rules", str(rules),
            "--total", "50", "--cong", "0", "--retx", "0", "--egr", "50",
            "--trace-out", str(trace),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert f"trace out={trace}" in captured.err

        from repro.obs.trace import load_trace

        spans = load_trace(trace)  # validates every line
        names = {span["name"] for span in spans}
        assert {"record", "step", "lm_forward", "feasible_digits"} <= names

        assert main(["trace-report", "--trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "per-record breakdown" in report
        assert "1 records" in report

    def test_trace_report_json_output(self, workspace, tmp_path, capsys):
        _, _, model, rules = workspace
        trace = tmp_path / "trace.jsonl"
        main([
            "impute", "--model", str(model), "--rules", str(rules),
            "--total", "40", "--cong", "1", "--retx", "0", "--egr", "40",
            "--trace-out", str(trace),
        ])
        capsys.readouterr()
        assert main(["trace-report", "--trace", str(trace), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["records"] == 1
        assert report["totals"]["lm_share"] + report["totals"][
            "solver_share"
        ] == pytest.approx(1.0)

    def test_trace_report_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "span": "nope"}\n')
        with pytest.raises(SystemExit, match="malformed trace"):
            main(["trace-report", "--trace", str(bad)])

    def test_stderr_records_parse_with_shared_kv_convention(
        self, workspace, capsys
    ):
        from repro.obs import parse_kv

        _, _, model, rules = workspace
        main([
            "impute", "--model", str(model), "--rules", str(rules),
            "--total", "50", "--cong", "0", "--retx", "0", "--egr", "50",
        ])
        err_lines = capsys.readouterr().err.strip().splitlines()
        events = {}
        for line in err_lines:
            event, pairs = parse_kv(line)
            events[event] = pairs
        assert events["degradation"]["records"] == "1"
        assert "records_per_sec" in events["throughput"]

    def test_obs_report_merges_and_reports(self, tmp_path, capsys):
        from repro.obs import ManualClock, SpanTracer, load_trace

        trace = tmp_path / "trace.jsonl"
        trace_id = "ab" * 16
        parent = SpanTracer(sink=trace, clock=ManualClock())
        parent.end(
            parent.start("request", attrs={"trace_id": trace_id}),
        )
        parent.close()
        worker_sink = tmp_path / "trace.jsonl.w0.g0"
        worker = SpanTracer(sink=worker_sink, clock=ManualClock())
        record = worker.start("record", attrs={"trace_id": trace_id})
        worker.end(worker.start("step", parent=record))
        worker.end(record)
        worker.close()

        merged_out = tmp_path / "merged.jsonl"
        code = main([
            "obs-report", "--trace", str(trace),
            "--merged-out", str(merged_out), "--json",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "worker_sinks=1" in captured.err
        report = json.loads(captured.out)
        assert report["records"] == 1
        assert "w0.g0" in report["by_worker"]
        assert trace_id in report["by_trace"]
        merged = load_trace(merged_out)
        by_name = {span["name"]: span for span in merged}
        assert by_name["record"]["parent"] == by_name["request"]["span"]

    def test_obs_report_tolerates_killed_worker_tail(self, tmp_path, capsys):
        from repro.obs import ManualClock, SpanTracer

        trace = tmp_path / "trace.jsonl"
        tracer = SpanTracer(sink=trace, clock=ManualClock())
        tracer.end(tracer.start("request", attrs={"trace_id": "cd" * 16}))
        tracer.close()
        # A SIGKILLed worker leaves a torn trailing line in its sink.
        (tmp_path / "trace.jsonl.w0.g0").write_text('{"v": 1, "span')
        assert main(["obs-report", "--trace", str(trace), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["spans"] == 1

    def test_tracing_is_disabled_after_the_command(self, workspace, tmp_path):
        from repro.obs import OBS

        _, _, model, rules = workspace
        main([
            "impute", "--model", str(model), "--rules", str(rules),
            "--total", "50", "--cong", "0", "--retx", "0", "--egr", "50",
            "--trace-out", str(tmp_path / "t.jsonl"),
        ])
        assert OBS.active is False
        assert OBS.tracer is None
