"""Structured span tracing for the enforcement hot path.

A *span* is one timed operation: a record's enforcement, one variable step,
one LM forward, one solver confirmation.  Spans are **explicitly parented**
-- the code that opens a child names its parent span id -- because the
enforcement engine interleaves many records' work on one thread, so an
implicit thread-local "current span" would misattribute children across
batch-mates.  (A parent *stack* still exists as a convenience for strictly
nested regions; see :class:`repro.obs.Observability`.)

Timing comes from an injectable :class:`~repro.obs.clock.Clock`, so tests
assert exact durations.  Finished spans land in a bounded in-memory ring
buffer (newest wins) and, when a sink is attached, as one JSON object per
line (JSONL).  The span schema is versioned and machine-checkable via
:func:`validate_span`; ``repro.cli trace-report`` and the CI observability
smoke both validate every line against it.
"""

from __future__ import annotations

import io
import json
import os
from collections import deque
from typing import Deque, Dict, IO, Iterable, List, Optional, Union

from .clock import Clock, MonotonicClock

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "WELL_KNOWN_SPANS",
    "SpanTracer",
    "validate_span",
    "load_trace",
]

#: Bumped whenever a field is added/renamed; every emitted span carries it.
SPAN_SCHEMA_VERSION = 1

#: The span names the built-in instrumentation emits.  Consumers must not
#: reject unknown names (the set is open), but reports group by these.
WELL_KNOWN_SPANS = (
    "request",      # one HTTP request, admission to response (router side)
    "record",       # one record's enforcement, end to end
    "step",         # one variable's generation within a record
    "lm_forward",   # one model call (a batched call is ONE span, attrs.rows)
    "feasible_digits",  # oracle feasible-set query feeding digit masking
    "smt_confirm",  # boundary confirmation of a sampled literal
    "smt_check",    # one Solver.check() (nested under confirm/feasible)
    "oracle_begin", # oracle begin_record (residualize + assert + first check)
    "repair",       # the posthoc-repair degradation stage
)

_SCALARS = (str, int, float, bool, type(None))


class SpanTracer:
    """Collects finished spans into a ring buffer and an optional sink.

    ``sink`` is a path or an open text file; each finished span is written
    as one JSON line immediately (the sink is line-buffered via explicit
    flush on :meth:`close`).  ``ring_size`` bounds in-memory retention --
    the ring is for in-process inspection (tests, `/metrics` debugging),
    the sink for offline analysis.

    Span ids are process-unique small ints.  A span is *emitted only when
    ended*; children therefore appear before their parent in the JSONL
    stream, and readers must resolve parents after reading the whole file
    (see :func:`load_trace`).
    """

    def __init__(
        self,
        ring_size: int = 4096,
        sink: Union[None, str, os.PathLike, IO[str]] = None,
        clock: Optional[Clock] = None,
    ):
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.clock = clock or MonotonicClock()
        self.ring: Deque[Dict] = deque(maxlen=ring_size)
        self._next_id = 1
        self._open: Dict[int, Dict] = {}
        self.emitted = 0
        self.dropped = 0  # ring overwrites (sink, if any, keeps everything)
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        if sink is not None:
            if isinstance(sink, (str, os.PathLike)):
                # Line-buffered: each span line reaches the OS as it is
                # emitted, so a SIGKILLed worker's sink holds every span it
                # finished (at worst one torn tail line, never silent loss).
                self._sink = open(sink, "w", encoding="utf-8", buffering=1)
                self._owns_sink = True
            else:
                self._sink = sink

    # -- span lifecycle --------------------------------------------------------

    def start(
        self,
        name: str,
        parent: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ) -> int:
        """Open a span; returns its id (pass it to children and to end())."""
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = {
            "v": SPAN_SCHEMA_VERSION,
            "span": span_id,
            "parent": parent,
            "name": str(name),
            "start": self.clock.now(),
            "attrs": dict(attrs) if attrs else {},
        }
        return span_id

    def end(self, span_id: int, attrs: Optional[Dict] = None) -> Dict:
        """Close a span, stamp its duration, and emit it."""
        span = self._open.pop(span_id, None)
        if span is None:
            raise KeyError(f"span {span_id} is not open")
        if attrs:
            span["attrs"].update(attrs)
        span["end"] = self.clock.now()
        span["dur_s"] = span["end"] - span["start"]
        self._emit(span)
        return span

    def abandon(self, span_id: int) -> None:
        """Drop an open span without emitting (error-path cleanup)."""
        self._open.pop(span_id, None)

    def _emit(self, span: Dict) -> None:
        if len(self.ring) == self.ring.maxlen:
            self.dropped += 1
        self.ring.append(span)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(span, sort_keys=True) + "\n")

    # -- inspection / teardown -------------------------------------------------

    def drain(self) -> List[Dict]:
        """The ring's contents, oldest first (the ring is left empty)."""
        out = list(self.ring)
        self.ring.clear()
        return out

    @property
    def open_spans(self) -> int:
        return len(self._open)

    def close(self) -> None:
        """Flush and (if owned) close the sink; open spans are abandoned."""
        self._open.clear()
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None


def validate_span(span: object) -> Dict:
    """Check one decoded span object against the schema; returns it.

    Raises ``ValueError`` with a field-specific message on any violation.
    Used by ``trace-report`` (every line is validated before aggregation)
    and by the CI observability smoke.
    """
    if not isinstance(span, dict):
        raise ValueError(f"span must be a JSON object, got {type(span).__name__}")
    if span.get("v") != SPAN_SCHEMA_VERSION:
        raise ValueError(f"unknown span schema version {span.get('v')!r}")
    for key, types in (
        ("span", int),
        ("name", str),
        ("start", (int, float)),
        ("end", (int, float)),
        ("dur_s", (int, float)),
        ("attrs", dict),
    ):
        if key not in span:
            raise ValueError(f"span is missing required field {key!r}")
        if not isinstance(span[key], types) or isinstance(span[key], bool):
            raise ValueError(f"span field {key!r} has wrong type: {span[key]!r}")
    parent = span.get("parent")
    if parent is not None and (isinstance(parent, bool) or not isinstance(parent, int)):
        raise ValueError(f"span field 'parent' must be an int or null: {parent!r}")
    if span["dur_s"] < 0 or span["end"] < span["start"]:
        raise ValueError(f"span {span['span']} has negative duration")
    for key, value in span["attrs"].items():
        if not isinstance(key, str):
            raise ValueError(f"span attr key {key!r} is not a string")
        if not isinstance(value, _SCALARS):
            raise ValueError(f"span attr {key!r} is not a scalar: {value!r}")
    return span


def load_trace(source: Union[str, os.PathLike, IO[str], Iterable[str]]) -> List[Dict]:
    """Read and validate a JSONL trace; raises ValueError on any bad line."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_trace(handle)
    if isinstance(source, io.TextIOBase):
        source = iter(source)
    spans = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            decoded = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON: {exc}")
        try:
            spans.append(validate_span(decoded))
        except ValueError as exc:
            raise ValueError(f"trace line {lineno}: {exc}")
    return spans
