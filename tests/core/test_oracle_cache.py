"""OracleCache capacity/eviction tests (ISSUE satellite).

The cache is a bounded FIFO memo: under pressure it must drop the oldest
insertion first, count every eviction, and -- the soundness half -- any
evicted key that is queried again must recompute to exactly the answer it
had before eviction (entries are pure functions of their state key).
"""

import pytest

from repro.core import EnforcerConfig, JitEnforcer, OracleCache
from repro.core.engine import LanePool
from repro.core.feasible import SmtOracle
from repro.data import build_dataset, variable_bounds
from repro.lm import NgramLM
from repro.rules import domain_bound_rules, paper_rules


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=5
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model, paper_rules(dataset.config)


class TestFifoEviction:
    def test_drop_order_is_insertion_order(self):
        cache = OracleCache(max_entries=3)
        for index in range(3):
            cache.store(("key", index), index)
        assert cache.evictions == 0
        cache.store(("key", 3), 3)  # evicts ("key", 0), the oldest
        assert cache.evictions == 1
        assert ("key", 0) not in cache
        assert all(("key", index) in cache for index in (1, 2, 3))
        cache.store(("key", 4), 4)  # next-oldest goes next
        assert ("key", 1) not in cache
        assert cache.evictions == 2
        assert len(cache) == 3

    def test_overwriting_resident_key_never_evicts(self):
        cache = OracleCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.store(("a",), 99)  # resident: update in place, no pressure
        assert cache.evictions == 0
        assert len(cache) == 2
        assert cache.lookup(("a",)) == 99

    def test_capacity_floor_is_one(self):
        cache = OracleCache(max_entries=0)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert len(cache) == 1
        assert cache.evictions == 1

    def test_stats_dict_shape(self):
        cache = OracleCache(max_entries=2)
        cache.store(("a",), 1)
        cache.lookup(("a",))
        cache.lookup(("zzz",))
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "capacity": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
            "partitions": {
                "default": {
                    "hits": 1,
                    "misses": 1,
                    "evictions": 0,
                    "entries": 1,
                    "hit_rate": 0.5,
                },
            },
        }
        # Pre-serving callers used snapshot(); it must stay an alias.
        assert cache.snapshot() == stats

    def test_default_capacity_constant(self):
        assert OracleCache().max_entries == OracleCache.DEFAULT_ENTRIES


class TestPartitionIsolation:
    """The cache partitions by rule-set fingerprint: two packs sharing one
    cache must never read each other's verdicts, even with byte-identical
    query prefixes (ISSUE acceptance: the regression that motivated
    content-hashed tags)."""

    def test_shared_cache_never_leaks_across_packs(self, setting):
        dataset, _, paper = setting
        bounds = variable_bounds(dataset.config)
        domain = domain_bound_rules(dataset.config)
        shared = OracleCache(max_entries=4096)
        oracle_a = SmtOracle(paper, bounds, cache=shared)
        oracle_b = SmtOracle(domain, bounds, cache=shared)
        fresh_b = SmtOracle(domain, bounds)  # ground truth, unshared
        window = dataset.config.window
        prompt = dataset.test_windows()[0].coarse()
        fine = dataset.test_windows()[0].variables()
        diverged = False
        # A populates the cache first, then B walks the *identical* prefix
        # (same prompt, same fixes -- actual window values, feasible under
        # both packs).  Every B answer must match the unshared oracle.
        for oracle in (oracle_a, oracle_b, fresh_b):
            oracle.begin_record(prompt)
        for t in range(window):
            name = f"I{t}"
            set_a = oracle_a.feasible_set(name)
            set_b = oracle_b.feasible_set(name)
            assert set_b.segments == fresh_b.feasible_set(name).segments
            if set_a.segments != set_b.segments:
                diverged = True  # paper R1-R3 narrow what bounds allow
            value = fine[name]
            assert oracle_b.confirm(name, value) == fresh_b.confirm(name, value)
            for oracle in (oracle_a, oracle_b, fresh_b):
                oracle.fix(name, value)
        assert diverged, "packs never disagreed; the isolation test is vacuous"

    def test_partition_stats_track_each_pack(self, setting):
        dataset, _, paper = setting
        bounds = variable_bounds(dataset.config)
        domain = domain_bound_rules(dataset.config)
        shared = OracleCache(max_entries=4096)
        prompt = dataset.test_windows()[0].coarse()
        for rules in (paper, domain):
            oracle = SmtOracle(rules, bounds, cache=shared)
            oracle.begin_record(prompt)
            oracle.feasible_set("I0")
        from repro.rules import rules_fingerprint

        partitions = shared.stats()["partitions"]
        assert set(partitions) == {
            rules_fingerprint(paper), rules_fingerprint(domain),
        }
        for row in partitions.values():
            assert row["entries"] > 0

    def test_evict_partition_leaves_other_packs_resident(self, setting):
        dataset, _, paper = setting
        from repro.rules import rules_fingerprint

        bounds = variable_bounds(dataset.config)
        domain = domain_bound_rules(dataset.config)
        shared = OracleCache(max_entries=4096)
        prompt = dataset.test_windows()[0].coarse()
        for rules in (paper, domain):
            oracle = SmtOracle(rules, bounds, cache=shared)
            oracle.begin_record(prompt)
            oracle.feasible_set("I0")
        paper_key = rules_fingerprint(paper)
        domain_key = rules_fingerprint(domain)
        before = shared.stats()["partitions"]
        dropped = shared.evict_partition(paper_key)
        assert dropped == before[paper_key]["entries"]
        after = shared.stats()["partitions"]
        assert after[paper_key]["entries"] == 0
        assert after[paper_key]["evictions"] == dropped
        assert after[domain_key]["entries"] == before[domain_key]["entries"]
        assert shared.evict_partition("no-such-partition") == 0


class TestEvictionSoundness:
    def test_requeried_evicted_key_recomputes_identically(self, setting):
        """Evict aggressively; every answer must still match a fresh oracle."""
        dataset, _, rules = setting
        bounds = variable_bounds(dataset.config)
        tiny = OracleCache(max_entries=4)  # far below the working set
        shared = SmtOracle(rules, bounds, cache=tiny)
        window = dataset.config.window
        prompts = [w.coarse() for w in dataset.test_windows()[:3]]
        # Two passes: pass 2 re-queries keys that pass 1 evicted.
        for prompt in prompts * 2:
            fresh = SmtOracle(rules, bounds)
            shared.begin_record(prompt)
            fresh.begin_record(prompt)
            for t in range(window):
                name = f"I{t}"
                shared_set = shared.feasible_set(name)
                assert shared_set.segments == fresh.feasible_set(name).segments
                value = shared_set.min_value
                assert shared.confirm(name, value) == fresh.confirm(name, value)
                shared.fix(name, value)
                fresh.fix(name, value)
        assert tiny.evictions > 0  # the pressure was real
        assert len(tiny) <= 4

    def test_lane_pool_capacity_is_configurable(self, setting):
        dataset, model, rules = setting
        enforcer = JitEnforcer(
            model,
            rules,
            dataset.config,
            EnforcerConfig(seed=3),
            fallback_rules=[domain_bound_rules(dataset.config)],
        )
        pool = LanePool(enforcer, 2, cache_entries=16)
        assert pool.cache.max_entries == 16
        assert LanePool(enforcer, 2).cache.max_entries == (
            OracleCache.DEFAULT_ENTRIES
        )
        assert LanePool(enforcer, 2, cache_entries=0).cache is None
