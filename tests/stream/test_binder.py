"""Unit tests for the sliding-window rule binder (repro.stream.binder)."""

import pytest

from repro.data import TelemetryConfig, build_dataset, fine_field
from repro.data.dataset import variable_bounds
from repro.data.telemetry import Window
from repro.rules import Rule, RuleSet, paper_rules, var
from repro.stream import (
    MAX_HISTORY_DEPTH,
    WindowBinder,
    combine_rule_sets,
    history_name,
    history_prefixes,
    joined_window_assignments,
    mine_stream_rules,
    stream_bounds,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        num_train_racks=3, num_test_racks=1, windows_per_rack=30, seed=3
    )


def _window(config, start):
    fine = tuple(range(start, start + config.window))
    return Window(
        fine=fine, total=sum(fine), cong=0, retx=0, egr=sum(fine)
    )


class TestNaming:
    def test_offset_one_uses_the_sequence_module_prefix(self):
        # Depth-1 rules mined for repro.core.sequence keep working.
        assert history_name("total", 1) == "prev_total"
        assert history_name("I0", 1) == "prev_I0"

    def test_deeper_offsets_are_numbered(self):
        assert history_name("total", 2) == "prev2_total"
        assert history_name("I4", 7) == "prev7_I4"

    def test_offset_zero_is_rejected(self):
        with pytest.raises(ValueError):
            history_name("total", 0)

    def test_history_prefixes_cover_every_offset_below_depth(self):
        assert history_prefixes(2) == ["prev_"]
        assert history_prefixes(4) == ["prev_", "prev2_", "prev3_"]
        assert history_prefixes(1) == []


class TestJoinedAssignments:
    def test_depth_two_joins_adjacent_windows(self):
        config = TelemetryConfig()
        windows = [_window(config, s) for s in (0, 10, 20)]
        joined = joined_window_assignments(windows, depth=2)
        assert len(joined) == 2
        first = joined[0]
        assert first["total"] == windows[1].total
        assert first["prev_total"] == windows[0].total
        assert first[f"prev_{fine_field(0)}"] == windows[0].fine[0]

    def test_depth_three_names_both_offsets(self):
        config = TelemetryConfig()
        windows = [_window(config, s) for s in (0, 10, 20, 30)]
        joined = joined_window_assignments(windows, depth=3)
        assert len(joined) == 2
        assert joined[0]["prev2_total"] == windows[0].total
        assert joined[0]["prev_total"] == windows[1].total
        assert joined[0]["total"] == windows[2].total

    def test_depth_below_two_is_rejected(self):
        with pytest.raises(ValueError):
            joined_window_assignments([], depth=1)


class TestMining:
    def test_mined_rules_are_all_genuinely_temporal(self, dataset):
        racks = [rack.windows for rack in dataset.train_racks]
        temporal = mine_stream_rules(racks, dataset.config)
        assert len(temporal) > 0
        for rule in temporal:
            assert rule.kind.startswith("temporal-")
            names = rule.variables()
            assert any(n.startswith("prev") for n in names)
            assert any(not n.startswith("prev") for n in names)

    def test_training_sequence_satisfies_its_own_mined_rules(self, dataset):
        racks = [rack.windows for rack in dataset.train_racks]
        temporal = mine_stream_rules(racks, dataset.config)
        binder = WindowBinder(dataset.config, depth=2)
        for rack in racks:
            records = [w.variables() for w in rack]
            assert binder.boundary_violations(records, temporal) == 0

    def test_too_short_racks_are_rejected(self, dataset):
        config = TelemetryConfig()
        with pytest.raises(ValueError):
            mine_stream_rules([[_window(config, 0)]], config, depth=2)

    def test_combine_keeps_both_sets(self, dataset):
        base = paper_rules(dataset.config)
        racks = [rack.windows for rack in dataset.train_racks]
        temporal = mine_stream_rules(racks, dataset.config)
        combined = combine_rule_sets(base, temporal, name="both")
        assert combined.name == "both"
        assert len(combined) == len(base) + len(temporal)
        for rule in base:
            assert rule.name in combined


class TestStreamBounds:
    def test_every_offset_gets_the_base_bounds(self):
        config = TelemetryConfig()
        base = variable_bounds(config)
        bounds = stream_bounds(config)
        for name, pair in base.items():
            assert bounds[name] == pair
            for offset in range(1, MAX_HISTORY_DEPTH):
                assert bounds[history_name(name, offset)] == pair

    def test_depth_is_respected(self):
        config = TelemetryConfig()
        bounds = stream_bounds(config, depth=3)
        assert "prev2_total" in bounds
        assert "prev3_total" not in bounds


class TestWindowBinder:
    def test_context_names_the_archived_predecessors(self):
        config = TelemetryConfig()
        binder = WindowBinder(config, depth=3)
        record = _window(config, 0).variables()
        archive = {4: record, 3: {k: v + 1 for k, v in record.items()}}
        context = binder.context_for(5, archive)
        assert context["prev_total"] == record["total"]
        assert context["prev2_total"] == record["total"] + 1
        assert context[f"prev_{fine_field(2)}"] == record[fine_field(2)]

    def test_missing_offsets_bind_nothing(self):
        config = TelemetryConfig()
        binder = WindowBinder(config, depth=4)
        record = _window(config, 0).variables()
        # seq 6's depth-4 window covers 3..5; only 4 is archived (5 was a
        # watermark gap, 3 fell off the horizon).
        context = binder.context_for(6, {4: record})
        assert set(context) == {
            history_name(name, 2) for name in record
        }

    def test_stream_start_has_empty_context(self):
        binder = WindowBinder(TelemetryConfig(), depth=2)
        assert binder.context_for(0, {}) == {}

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            WindowBinder(TelemetryConfig(), depth=0)
        with pytest.raises(ValueError):
            WindowBinder(TelemetryConfig(), depth=MAX_HISTORY_DEPTH + 1)

    def test_boundary_violations_counts_broken_joins(self):
        config = TelemetryConfig()
        binder = WindowBinder(config, depth=2)
        smooth = RuleSet(
            [
                Rule(
                    name="smooth-total",
                    formula=(var("total") - var("prev_total")) <= 5,
                    kind="temporal-octagon",
                )
            ],
            name="audit",
        )
        flat = _window(config, 0).variables()
        jump = dict(flat, total=flat["total"] + 50)
        assert binder.boundary_violations([flat, flat, flat], smooth) == 0
        assert binder.boundary_violations([flat, jump, flat], smooth) == 1
        # Rules whose variables are not all assigned are not audited.
        partial = {"cong": 0}
        assert binder.boundary_violations([partial, partial], smooth) == 0
