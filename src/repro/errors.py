"""Typed failure taxonomy for the JIT enforcement loop.

LeJIT puts an SMT solver on the token-emission hot path, so every failure
mode of the solver stack must be distinguishable by the enforcer's
degradation ladder instead of surfacing as an anonymous ``RuntimeError``:

* :class:`SolverBudgetExceeded` -- a deterministic work budget (CDCL
  conflicts/decisions, simplex pivots, theory rounds, branch-and-bound
  nodes) ran out before the query was decided.  The query outcome is
  UNKNOWN, *not* UNSAT; callers may retry with a larger budget or step
  down the ladder.
* :class:`DeadEnd` -- generation reached a state where no admissible token
  exists (or the model's distribution collapsed).  Carries the variable
  being generated, the emitted prefix, and the admissible-set size.
* :class:`InfeasibleRecord` -- the rules genuinely admit no completion of
  the current record prefix (a real UNSAT, not resource exhaustion).
* :class:`DegradedResult` -- a record was produced, but only via a
  degraded ladder stage; raised when the caller demanded strict mode.

All inherit :class:`ReproError` (itself a ``RuntimeError`` so legacy
``except RuntimeError`` call sites keep working).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "SolverBudgetExceeded",
    "DeadEnd",
    "InfeasibleRecord",
    "DegradedResult",
    "QueueFull",
    "DeadlineExceeded",
    "RequestCancelled",
    "ServerClosed",
    "InjectedFault",
    "WorkerCrashed",
    "WorkerPoolUnavailable",
    "UnknownRuleSet",
    "RetiredRuleSet",
]


class ReproError(RuntimeError):
    """Base class of every typed LeJIT failure."""


class SolverBudgetExceeded(ReproError):
    """A solver work budget was exhausted before the query was decided.

    The corresponding query result is UNKNOWN: the caller must not treat
    it as UNSAT.  ``resource`` names the exhausted counter (``conflicts``,
    ``decisions``, ``pivots``, ``theory_rounds``, ``bb_nodes``) when known.
    """

    def __init__(
        self,
        message: str = "solver work budget exceeded",
        resource: Optional[str] = None,
        limit: Optional[int] = None,
        spent: Optional[int] = None,
    ):
        self.resource = resource
        self.limit = limit
        self.spent = spent
        detail = message
        if resource is not None:
            extras = [f"resource={resource}"]
            if limit is not None:
                extras.append(f"limit={limit}")
            if spent is not None:
                extras.append(f"spent={spent}")
            detail = f"{message} [{', '.join(extras)}]"
        super().__init__(detail)


class DeadEnd(ReproError):
    """No admissible token exists at some generation step.

    Context fields (all optional, included in the message when set):

    * ``variable`` -- the record variable being generated;
    * ``prefix`` -- the literal prefix emitted so far;
    * ``admissible`` -- size of the admissible token set at the dead end.
    """

    def __init__(
        self,
        reason: str,
        variable: Optional[str] = None,
        prefix: Optional[str] = None,
        admissible: Optional[int] = None,
    ):
        self.reason = reason
        self.variable = variable
        self.prefix = prefix
        self.admissible = admissible
        parts = [reason]
        if variable is not None:
            parts.append(f"variable={variable!r}")
        if prefix is not None:
            parts.append(f"prefix={prefix!r}")
        if admissible is not None:
            parts.append(f"admissible_size={admissible}")
        super().__init__("; ".join(parts))

    def with_context(
        self,
        variable: Optional[str] = None,
        prefix: Optional[str] = None,
        admissible: Optional[int] = None,
    ) -> "DeadEnd":
        """A copy with missing context fields filled in."""
        return DeadEnd(
            self.reason,
            variable=self.variable if self.variable is not None else variable,
            prefix=self.prefix if self.prefix is not None else prefix,
            admissible=(
                self.admissible if self.admissible is not None else admissible
            ),
        )


class InfeasibleRecord(ReproError):
    """The rules admit no completion of the current record prefix."""


class DegradedResult(ReproError):
    """A record exists only via a degraded ladder stage (strict mode).

    Carries the :class:`~repro.core.enforcer.RecordOutcome` so callers can
    still inspect (or accept) the degraded record.
    """

    def __init__(self, message: str, outcome: Any = None):
        self.outcome = outcome
        super().__init__(message)


# -- serving lifecycle failures (see repro.serve) ---------------------------


class QueueFull(ReproError):
    """Admission refused: the serving queue is at its configured depth.

    The HTTP front end maps this to ``429 Too Many Requests`` -- explicit
    backpressure instead of unbounded buffering.
    """


class DeadlineExceeded(ReproError):
    """A request's deadline passed before its records finished.

    Raised inside the owning sessions at their next suspension checkpoint
    (never in batch-mates) and mapped to ``504`` by the HTTP front end.
    """


class RequestCancelled(ReproError):
    """A request was cancelled by its submitter before completion."""


class ServerClosed(ReproError):
    """The scheduler is shut down (or draining) and accepts no new work."""


# -- fault injection & worker supervision (see repro.testing.faults and
# -- repro.serve.supervisor) -------------------------------------------------


class InjectedFault(ReproError):
    """A deliberately injected fault fired (chaos testing only).

    Raised by the deterministic fault doubles in
    :mod:`repro.testing.faults` (e.g. :class:`~repro.testing.faults.CrashingLM`)
    so chaos tests can distinguish the faults *they* scheduled from any
    organic failure the fault provoked downstream.  ``site`` names the
    call site that fired; ``call_index`` is its 0-based trigger position.
    """

    def __init__(
        self,
        message: str = "injected fault",
        site: Optional[str] = None,
        call_index: Optional[int] = None,
    ):
        self.site = site
        self.call_index = call_index
        detail = message
        extras = []
        if site is not None:
            extras.append(f"site={site}")
        if call_index is not None:
            extras.append(f"call_index={call_index}")
        if extras:
            detail = f"{message} [{', '.join(extras)}]"
        super().__init__(detail)


class WorkerCrashed(ReproError):
    """A worker process died (or stalled past liveness) holding a record.

    The supervisor replays the record on a healthy worker -- byte-identical
    by the ``record_rng(seed, i)`` contract -- so this error only reaches a
    client once the bounded retry budget is exhausted.
    """


class WorkerPoolUnavailable(ReproError):
    """No healthy worker can take the request (crash loop / open breaker).

    The circuit-breaker shedding signal: mapped to ``503 Service
    Unavailable`` (with ``Retry-After: retry_after``) by the HTTP front
    end, so clients back off instead of queueing behind a flapping pool.
    """

    def __init__(
        self, message: str = "worker pool unavailable", retry_after: int = 1
    ):
        self.retry_after = retry_after
        super().__init__(message)


# -- multi-tenant rule-set registry (see repro.rules.registry) ---------------


class UnknownRuleSet(ReproError):
    """A request named a rule pack the registry has never seen.

    Raised synchronously at admission (before the request is queued) and
    mapped to ``404 Not Found`` by the HTTP front end.  Both constructor
    shapes must stay single-string so the worker pipe's
    ``resolve_error(type, message)`` round-trip can rebuild it.
    """


class RetiredRuleSet(ReproError):
    """A request named a rule pack version that has been retired.

    Retired versions stay resolvable *by content hash* so in-flight and
    replayed records finish under the version they were admitted with,
    but new requests naming them explicitly are refused with ``409
    Conflict``.
    """
