"""Multi-tenant rule-set tests: hot swap, isolation, and byte parity.

The tentpole contract: a rule set is a named, versioned, content-hashed
object resolved per request.  Under test here:

* byte determinism -- the same ``(seed, index, rule-set hash)`` produces
  identical bytes on the serial enforcer, the batch engine, the
  single-process scheduler, and the supervised worker pool, no matter
  which other tenants share the lanes;
* hot swap -- ``promote`` mid-load switches *new* requests to the new
  version atomically while requests admitted earlier finish under the
  version they resolved, with zero failures during the swap;
* retire semantics -- name-based resolution of a retired version is
  refused (409 at the HTTP edge) while hash refs keep resolving, which is
  what crash replay rides on;
* tenant bookkeeping -- per-tenant queue quotas back-pressure only the
  offending tenant, and per-tenant counters reach /metrics and the
  Prometheus exposition with a ``tenant`` label.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import EnforcerConfig, JitEnforcer
from repro.core.engine import EnforcementEngine, RecordRequest
from repro.errors import QueueFull, RetiredRuleSet, UnknownRuleSet
from repro.lm import NgramLM
from repro.data import build_dataset
from repro.obs.prometheus import metric_value, parse
from repro.rules import (
    RuleSetRegistry,
    builtin_registry,
    domain_bound_rules,
    paper_rules,
)
from repro.serve import (
    ContinuousBatchingScheduler,
    RequestSpec,
    ServingServer,
    WorkerPool,
)
from repro.serve.types import DONE


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=5
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model, paper_rules(dataset.config)


@pytest.fixture()
def registry(setting):
    dataset, _, _ = setting
    return builtin_registry(dataset.config)


def _enforcer(dataset, model, rules, seed=13):
    return JitEnforcer(
        model,
        rules,
        dataset.config,
        EnforcerConfig(seed=seed),
        fallback_rules=[domain_bound_rules(dataset.config)],
    )


def _pack_rules(dataset, name):
    return {
        "paper-R1-R3": paper_rules,
        "domain-bounds": domain_bound_rules,
    }[name](dataset.config)


def _serial_reference(dataset, model, pack_name, coarse, seed):
    """Record 0 of a fresh enforcer built directly on the pack's rules --
    the ground truth for ``(seed, index=0, hash(pack))``."""
    return _enforcer(
        dataset, model, _pack_rules(dataset, pack_name), seed=seed
    ).impute_record(coarse)


MIX = ("paper-R1-R3", "domain-bounds")


class TestByteDeterminismAcrossBackends:
    """Same (seed, index, rule-set hash) -> same bytes, every backend."""

    def test_scheduler_mixed_tenants_match_serial(self, setting, registry):
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:6]]
        tenants = [MIX[i % 2] for i in range(len(prompts))]
        reference = [
            _serial_reference(dataset, model, pack, coarse, seed=300 + i)
            for i, (coarse, pack) in enumerate(zip(prompts, tenants))
        ]
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules), lanes=2, rule_registry=registry
        ) as scheduler:
            handles = [
                scheduler.submit(RequestSpec(
                    "impute", coarse=coarse, seed=300 + i, rule_set=pack,
                ))
                for i, (coarse, pack) in enumerate(zip(prompts, tenants))
            ]
            results = [h.result(timeout=120) for h in handles]
        for result, expected in zip(results, reference):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]

    def test_engine_mixed_tenants_match_interleaved_serial(
        self, setting, registry
    ):
        """One engine run interleaving two packs == the serial enforcer
        making the same per-record pack choices in the same order."""
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:4]]
        handles = [
            None if i % 2 == 0 else registry.resolve("domain-bounds")
            for i in range(len(prompts))
        ]
        serial = _enforcer(dataset, model, rules, seed=71)
        reference = [
            serial.impute_record(coarse, rule_set=handle)
            for coarse, handle in zip(prompts, handles)
        ]
        batched = _enforcer(dataset, model, rules, seed=71)
        engine = EnforcementEngine(batched, batch_size=2)
        requests = [
            RecordRequest(*batched.impute_plan(coarse), rule_set=handle)
            for coarse, handle in zip(prompts, handles)
        ]
        outcomes = engine.run(requests)
        for outcome, expected in zip(outcomes, reference):
            assert dict(outcome.values) == dict(expected.values)
            assert outcome.stage == expected.stage

    def test_worker_pool_mixed_tenants_match_serial(self, setting, registry):
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:6]]
        tenants = [MIX[i % 2] for i in range(len(prompts))]
        reference = [
            _serial_reference(dataset, model, pack, coarse, seed=300 + i)
            for i, (coarse, pack) in enumerate(zip(prompts, tenants))
        ]

        def factory():
            return _enforcer(dataset, model, rules)

        with WorkerPool(
            factory, workers=2, lanes_per_worker=2, rule_registry=registry
        ) as pool:
            handles = [
                pool.submit(RequestSpec(
                    "impute", coarse=coarse, seed=300 + i, rule_set=pack,
                ))
                for i, (coarse, pack) in enumerate(zip(prompts, tenants))
            ]
            results = [h.result(timeout=120) for h in handles]
        for result, expected in zip(results, reference):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]

    def test_tenant_mix_does_not_change_single_tenant_bytes(
        self, setting, registry
    ):
        """A tenant's bytes are identical whether it runs alone or
        interleaved with another tenant on the same lanes."""
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:4]]

        def run(mixed):
            with ContinuousBatchingScheduler(
                _enforcer(dataset, model, rules),
                lanes=2,
                rule_registry=registry,
            ) as scheduler:
                handles = []
                for i, coarse in enumerate(prompts):
                    handles.append(scheduler.submit(RequestSpec(
                        "impute", coarse=coarse, seed=400 + i,
                        rule_set="paper-R1-R3",
                    )))
                    if mixed:
                        handles.append(scheduler.submit(RequestSpec(
                            "impute", coarse=coarse, seed=800 + i,
                            rule_set="domain-bounds",
                        )))
                return [h.result(timeout=120).records for h in handles]

        alone = run(mixed=False)
        mixed = run(mixed=True)
        assert mixed[0::2] == alone  # the paper-R1-R3 records, unchanged


def _register_hot_pack(registry, dataset):
    """A two-version pack: v1 enforces the paper rules, v2 only bounds."""
    registry.register(paper_rules(dataset.config), name="hot")
    registry.register(
        domain_bound_rules(dataset.config), name="hot", activate=False
    )
    return registry


class TestHotSwap:
    def test_promote_mid_load_scheduler(self, setting, registry):
        """Requests admitted before the promote finish under v1; requests
        submitted after resolve v2; nothing fails during the swap."""
        dataset, model, rules = setting
        _register_hot_pack(registry, dataset)
        prompts = [w.coarse() for w in dataset.test_windows()[:4]]
        ref_v1 = [
            _serial_reference(dataset, model, "paper-R1-R3", c, seed=500 + i)
            for i, c in enumerate(prompts)
        ]
        ref_v2 = [
            _serial_reference(dataset, model, "domain-bounds", c, seed=500 + i)
            for i, c in enumerate(prompts)
        ]
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules), lanes=2, rule_registry=registry
        ) as scheduler:
            before = [
                scheduler.submit(RequestSpec(
                    "impute", coarse=c, seed=500 + i, rule_set="hot",
                ))
                for i, c in enumerate(prompts)
            ]
            registry.promote("hot", 2)  # atomic: all later submits see v2
            after = [
                scheduler.submit(RequestSpec(
                    "impute", coarse=c, seed=500 + i, rule_set="hot",
                ))
                for i, c in enumerate(prompts)
            ]
            old = [h.result(timeout=120) for h in before]
            new = [h.result(timeout=120) for h in after]
            metrics = scheduler.metrics()
        for result, expected in zip(old, ref_v1):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]
        for result, expected in zip(new, ref_v2):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]
        assert metrics["requests"]["failed"] == 0
        # The swap is observable: at least one prompt imputes differently
        # under v2's looser rules than under v1's paper rules.
        assert any(
            a.records != b.records for a, b in zip(old, new)
        )

    def test_promote_mid_load_worker_pool(self, setting, registry):
        dataset, model, rules = setting
        _register_hot_pack(registry, dataset)
        prompts = [w.coarse() for w in dataset.test_windows()[:3]]
        ref_v1 = [
            _serial_reference(dataset, model, "paper-R1-R3", c, seed=600 + i)
            for i, c in enumerate(prompts)
        ]
        ref_v2 = [
            _serial_reference(dataset, model, "domain-bounds", c, seed=600 + i)
            for i, c in enumerate(prompts)
        ]

        def factory():
            return _enforcer(dataset, model, rules)

        with WorkerPool(
            factory, workers=2, lanes_per_worker=2, rule_registry=registry
        ) as pool:
            before = [
                pool.submit(RequestSpec(
                    "impute", coarse=c, seed=600 + i, rule_set="hot",
                ))
                for i, c in enumerate(prompts)
            ]
            pool.rule_registry.promote("hot", 2)
            after = [
                pool.submit(RequestSpec(
                    "impute", coarse=c, seed=600 + i, rule_set="hot",
                ))
                for i, c in enumerate(prompts)
            ]
            old = [h.result(timeout=120) for h in before]
            new = [h.result(timeout=120) for h in after]
            metrics = pool.metrics()
        for result, expected in zip(old, ref_v1):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]
        for result, expected in zip(new, ref_v2):
            assert result.status == DONE
            assert result.records == [dict(expected.values)]
        assert metrics["requests"]["failed"] == 0
        assert metrics["supervision"]["units_lost"] == 0

    def test_retire_blocks_names_but_not_hashes(self, setting, registry):
        dataset, model, rules = setting
        _register_hot_pack(registry, dataset)
        v1_hash = registry.resolve("hot@1").hash_ref
        registry.promote("hot", 2)
        registry.retire("hot", 1)
        coarse = dataset.test_windows()[0].coarse()
        expected = _serial_reference(
            dataset, model, "paper-R1-R3", coarse, seed=77
        )
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules), rule_registry=registry
        ) as scheduler:
            with pytest.raises(RetiredRuleSet):
                scheduler.submit(RequestSpec(
                    "impute", coarse=coarse, rule_set="hot@1",
                ))
            # Hash refs outlive the retire: this is the crash-replay path.
            result = scheduler.submit(RequestSpec(
                "impute", coarse=coarse, seed=77, rule_set=v1_hash,
            )).result(timeout=120)
        assert result.records == [dict(expected.values)]

    def test_unknown_pack_rejected_at_submit(self, setting, registry):
        dataset, model, rules = setting
        coarse = dataset.test_windows()[0].coarse()
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules), rule_registry=registry
        ) as scheduler:
            with pytest.raises(UnknownRuleSet) as excinfo:
                scheduler.submit(RequestSpec(
                    "impute", coarse=coarse, rule_set="no-such-pack",
                ))
            assert "paper-R1-R3" in str(excinfo.value)  # lists available
            assert scheduler.metrics()["requests"]["submitted"] == 0

    def test_rule_set_without_registry_is_unknown(self, setting):
        dataset, model, rules = setting
        coarse = dataset.test_windows()[0].coarse()
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules)
        ) as scheduler:
            with pytest.raises(UnknownRuleSet):
                scheduler.submit(RequestSpec(
                    "impute", coarse=coarse, rule_set="paper-R1-R3",
                ))

    def test_retire_evicts_cache_partition(self, setting, registry):
        import time as _time

        dataset, model, rules = setting
        _register_hot_pack(registry, dataset)
        coarse = dataset.test_windows()[0].coarse()
        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules), rule_registry=registry
        ) as scheduler:
            scheduler.impute(coarse, seed=3, rule_set="hot@1",
                             wait_timeout=120)
            v1_hash = registry.resolve("hot@1").content_hash
            partitions = scheduler.pool.cache.stats()["partitions"]
            assert partitions[v1_hash]["entries"] > 0
            registry.promote("hot", 2)
            registry.retire("hot", 1)
            deadline = _time.monotonic() + 30
            while _time.monotonic() < deadline:
                partitions = scheduler.pool.cache.stats()["partitions"]
                if partitions.get(v1_hash, {}).get("entries", 0) == 0:
                    break
                _time.sleep(0.05)
            assert partitions.get(v1_hash, {}).get("entries", 0) == 0


class TestTenantBookkeeping:
    def test_tenant_quota_backpressures_only_that_tenant(
        self, setting, registry
    ):
        dataset, model, rules = setting
        coarse = dataset.test_windows()[0].coarse()
        scheduler = ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules),
            rule_registry=registry,
            tenant_quotas={"domain-bounds": 1},
        )
        # Not started: submissions queue without being drained, so the
        # quota is exercised deterministically via the queue directly.
        queue = scheduler.queue
        from repro.serve.types import ServeRequest

        first = ServeRequest(RequestSpec(
            "impute", coarse=coarse, rule_set="domain-bounds",
        ))
        first.rule_handle = registry.resolve("domain-bounds")
        queue.submit(first)
        second = ServeRequest(RequestSpec(
            "impute", coarse=coarse, rule_set="domain-bounds",
        ))
        second.rule_handle = registry.resolve("domain-bounds")
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(second)
        assert "domain-bounds" in str(excinfo.value)
        # The default tenant is unaffected by the exhausted quota.
        queue.submit(ServeRequest(RequestSpec("impute", coarse=coarse)))
        assert queue.tenant_depths() == {"domain-bounds": 1, "default": 1}
        assert queue.rejected_by_tenant == {"domain-bounds": 1}

    def test_tenant_priority_bias_orders_admission(self, setting, registry):
        dataset, model, rules = setting
        coarse = dataset.test_windows()[0].coarse()
        from repro.serve.queue import AdmissionQueue
        from repro.serve.types import ServeRequest

        queue = AdmissionQueue(8, tenant_priorities={"domain-bounds": -10})
        plain = ServeRequest(RequestSpec("impute", coarse=coarse))
        queue.submit(plain)
        urgent = ServeRequest(RequestSpec(
            "impute", coarse=coarse, rule_set="domain-bounds",
        ))
        urgent.rule_handle = registry.resolve("domain-bounds")
        queue.submit(urgent)
        assert queue.pop() is urgent  # bias beats arrival order
        assert queue.pop() is plain

    def test_per_tenant_metrics_and_prometheus_labels(
        self, setting, registry
    ):
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:2]]
        from repro.obs import MetricsRegistry

        with ContinuousBatchingScheduler(
            _enforcer(dataset, model, rules),
            lanes=2,
            rule_registry=registry,
            registry=MetricsRegistry(),
        ) as scheduler:
            scheduler.impute(prompts[0], seed=1, rule_set="domain-bounds",
                             wait_timeout=120)
            scheduler.impute(prompts[1], seed=2, wait_timeout=120)
            metrics = scheduler.metrics()
            text = scheduler.prometheus_text()
        assert metrics["tenants"]["domain-bounds"]["completed"] == 1
        assert metrics["tenants"]["default"]["completed"] == 1
        assert [row["name"] for row in metrics["rule_sets"]] == [
            "domain-bounds", "paper-R1-R3", "zoom2net-C4-C7",
        ]
        parsed = parse(text)
        assert metric_value(
            parsed,
            "repro_serve_tenant_requests_completed_total",
            {"tenant": "domain-bounds"},
        ) == 1.0
        assert metric_value(
            parsed,
            "repro_serve_tenant_records_completed_total",
            {"tenant": "default"},
        ) == 1.0


@pytest.fixture()
def tenant_server(setting, registry):
    dataset, model, rules = setting
    _register_hot_pack(registry, dataset)
    registry.promote("hot", 2)
    registry.retire("hot", 1)
    scheduler = ContinuousBatchingScheduler(
        _enforcer(dataset, model, rules), lanes=2, rule_registry=registry
    )
    with ServingServer(scheduler, port=0) as server:
        yield server


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttpRuleSets:
    def test_rule_set_round_trip(self, setting, tenant_server):
        dataset, model, _ = setting
        coarse = dataset.test_windows()[0].coarse()
        expected = _serial_reference(
            dataset, model, "domain-bounds", coarse, seed=9
        )
        status, payload = _post(tenant_server, "/v1/impute", {
            "coarse": coarse, "seed": 9, "rule_set": "domain-bounds",
        })
        assert status == 200
        assert payload["records"] == [dict(expected.values)]

    def test_unknown_pack_is_404(self, setting, tenant_server):
        dataset, _, _ = setting
        coarse = dataset.test_windows()[0].coarse()
        status, payload = _post(tenant_server, "/v1/impute", {
            "coarse": coarse, "rule_set": "no-such-pack",
        })
        assert status == 404
        assert "no-such-pack" in payload["error"]

    def test_retired_version_is_409(self, setting, tenant_server):
        dataset, _, _ = setting
        coarse = dataset.test_windows()[0].coarse()
        status, payload = _post(tenant_server, "/v1/impute", {
            "coarse": coarse, "rule_set": "hot@1",
        })
        assert status == 409
        assert "retired" in payload["error"]

    def test_non_string_rule_set_is_400(self, setting, tenant_server):
        dataset, _, _ = setting
        coarse = dataset.test_windows()[0].coarse()
        status, _ = _post(tenant_server, "/v1/impute", {
            "coarse": coarse, "rule_set": 7,
        })
        assert status == 400
