"""Masked sampling tests (the LeJIT integration seam)."""

import numpy as np
import pytest

from repro.lm import (
    CharTokenizer,
    DeadEndError,
    NgramLM,
    SampleTrace,
    sample_tokens,
)


@pytest.fixture(scope="module")
def model():
    corpus = [f"{a} {b}>{a + b}\n" for a in range(20) for b in range(5)]
    return NgramLM(order=5).fit(corpus)


class TestSampling:
    def test_stops_at_stop_id(self, model):
        tokenizer = model.tokenizer
        out = sample_tokens(
            model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 20,
            rng=np.random.default_rng(0),
        )
        assert out[-1] == tokenizer.record_end_id
        assert tokenizer.record_end_id not in out[:-1]

    def test_respects_budget(self, model):
        tokenizer = model.tokenizer
        out = sample_tokens(
            model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 2,
            rng=np.random.default_rng(0),
        )
        assert len(out) <= 2

    def test_never_emits_specials(self, model):
        tokenizer = model.tokenizer
        for seed in range(5):
            out = sample_tokens(
                model, tokenizer.encode(""), tokenizer.record_end_id, 30,
                rng=np.random.default_rng(seed),
            )
            assert tokenizer.pad_id not in out
            assert tokenizer.bos_id not in out

    def test_mask_is_honored(self, model):
        tokenizer = model.tokenizer
        allowed = {tokenizer.id_of("7"), tokenizer.record_end_id}
        out = sample_tokens(
            model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 10,
            mask_hook=lambda ids: allowed,
            rng=np.random.default_rng(1),
        )
        assert set(out) <= allowed

    def test_empty_mask_raises_dead_end(self, model):
        tokenizer = model.tokenizer
        with pytest.raises(DeadEndError):
            sample_tokens(
                model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 5,
                mask_hook=lambda ids: set(),
                rng=np.random.default_rng(0),
            )

    def test_mask_of_only_specials_raises(self, model):
        tokenizer = model.tokenizer
        with pytest.raises(DeadEndError):
            sample_tokens(
                model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 5,
                mask_hook=lambda ids: {tokenizer.pad_id},
                rng=np.random.default_rng(0),
            )

    def test_trace_counts(self, model):
        tokenizer = model.tokenizer
        allowed = {tokenizer.id_of("9"), tokenizer.record_end_id}
        trace = SampleTrace()
        sample_tokens(
            model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 10,
            mask_hook=lambda ids: allowed,
            rng=np.random.default_rng(2),
            trace=trace,
        )
        assert trace.steps >= 1
        assert trace.masked_steps >= 1
        assert 0 <= trace.diverted_steps <= trace.steps
        assert trace.pruned_probability >= 0

    def test_trace_merge(self):
        first = SampleTrace(steps=3, masked_steps=1, diverted_steps=1,
                            forced_steps=0, pruned_probability=0.5)
        second = SampleTrace(steps=2, masked_steps=2, diverted_steps=0,
                             forced_steps=1, pruned_probability=0.25)
        first.merge(second)
        assert first.steps == 5
        assert first.masked_steps == 3
        assert first.forced_steps == 1
        assert abs(first.pruned_probability - 0.75) < 1e-12

    def test_unmasked_matches_model_distribution(self, model):
        """Empirically, unmasked sampling tracks the model's distribution."""
        tokenizer = model.tokenizer
        prefix = tokenizer.encode("3 2>")
        probs = model.next_distribution(prefix)
        top = int(np.argmax(probs))
        rng = np.random.default_rng(3)
        draws = [
            sample_tokens(model, prefix, tokenizer.record_end_id, 1, rng=rng)[0]
            for _ in range(300)
        ]
        frequency = draws.count(top) / len(draws)
        assert abs(frequency - probs[top]) < 0.15

    def test_temperature_zero_ish_is_greedy(self, model):
        tokenizer = model.tokenizer
        prefix = tokenizer.encode("3 2>")
        probs = model.next_distribution(prefix)
        greedy = int(np.argmax(probs))
        out = sample_tokens(
            model, prefix, tokenizer.record_end_id, 1,
            temperature=0.01, rng=np.random.default_rng(4),
        )
        assert out[0] == greedy


class TestTopK:
    def test_top_k_restricts_support(self, model):
        tokenizer = model.tokenizer
        prefix = tokenizer.encode("3 2>")
        probs = model.next_distribution(prefix)
        import numpy as np

        top2 = set(np.argsort(probs)[-2:])
        draws = set()
        rng = np.random.default_rng(0)
        for _ in range(100):
            out = sample_tokens(
                model, prefix, tokenizer.record_end_id, 1, top_k=2, rng=rng
            )
            draws.add(out[0])
        assert draws <= top2

    def test_top_k_composes_with_mask(self, model):
        """The mask always wins: top-k never reintroduces pruned tokens."""
        tokenizer = model.tokenizer
        allowed = {tokenizer.id_of("7"), tokenizer.record_end_id}
        import numpy as np

        out = sample_tokens(
            model, tokenizer.encode("3 2>"), tokenizer.record_end_id, 10,
            mask_hook=lambda ids: allowed, top_k=3,
            rng=np.random.default_rng(1),
        )
        assert set(out) <= allowed

    def test_invalid_top_k(self, model):
        tokenizer = model.tokenizer
        with pytest.raises(ValueError):
            sample_tokens(
                model, tokenizer.encode("1"), tokenizer.record_end_id, 1,
                top_k=0,
            )
