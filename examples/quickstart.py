"""Quickstart: the paper's worked example (Figs. 1 and 2), end to end.

A character-level LM biased toward the paper's invalid continuation
``[20, 15, 25, 70, 8]`` is wrapped by LeJIT with rules R1-R3.  The script
shows the solver-computed feasible regions, the character-level transition
system for I3, and the guided (compliant) output.

Run:  python examples/quickstart.py
"""

from repro.core import EnforcerConfig, JitEnforcer, RecordSampler
from repro.core.feasible import SmtOracle
from repro.core.transition import SEPARATOR, DigitTransitionSystem, FeasibleSet
from repro.data import TelemetryConfig, prompt_text, variable_bounds
from repro.lm import NgramLM
from repro.rules import paper_rules


def main() -> None:
    config = TelemetryConfig()  # T=5, BW=60: the paper's setting
    rules = paper_rules(config)
    coarse = {"total": 100, "cong": 3, "retx": 1, "egr": 100}

    print("=== Rules (Section 2.1) ===")
    for rule in rules:
        print(f"  {rule.name:6s} {rule.description}")

    # An LM that has only ever seen the invalid record of Fig. 1a.
    biased_record = prompt_text(coarse) + "20 15 25 70 8\n"
    model = NgramLM(order=8).fit([biased_record] * 50)

    print("\n=== Vanilla generation (Fig. 1a) ===")
    sampler = RecordSampler(model, config, seed=0)
    vanilla = sampler.impute_raw(coarse)
    fine = [vanilla[f"I{t}"] for t in range(5)]
    print(f"  model output: {fine}")
    for rule in rules.violations(vanilla):
        print(f"  VIOLATES {rule.name}: {rule.description}")

    print("\n=== Solver view after [20, 15, 25] (Fig. 2) ===")
    oracle = SmtOracle(rules, variable_bounds(config))
    oracle.begin_record(coarse)
    for name, value in [("I0", 20), ("I1", 15), ("I2", 25)]:
        oracle.fix(name, value)
    region = oracle.feasible_set("I3")
    print(f"  feasible region for I3: [{region.min_value}, {region.max_value}]")

    system = DigitTransitionSystem(region)
    for prefix in ["", "3", "4", "7"]:
        allowed = sorted(
            c if c != SEPARATOR else "<sep>" for c in system.allowed_next(prefix)
        )
        print(f"  after prefix {prefix!r:5}: allowed next chars {allowed}")

    oracle.fix("I3", 39)
    forced = oracle.feasible_set("I4")
    print(f"  after I3=39, region for I4: {forced.segments}  (step 5: forced)")

    print("\n=== LeJIT-guided generation (Fig. 1b) ===")
    enforcer = JitEnforcer(model, rules, config, EnforcerConfig(seed=0))
    guided = enforcer.impute(coarse)
    fine = [guided[f"I{t}"] for t in range(5)]
    print(f"  guided output: {fine}  (sum = {sum(fine)})")
    print(f"  compliant: {rules.compliant(guided)}")
    trace = enforcer.trace
    print(
        f"  guidance: {trace.sample.diverted_steps} of {trace.sample.steps} "
        "steps diverted (minimally invasive)"
    )


if __name__ == "__main__":
    main()
