"""Temporal (cross-window) rule enforcement -- the Section 5 extension.

The paper's research agenda calls for "better support for temporal logic"
and rules that span beyond a single record.  This module adds exactly that
for the window-sequence setting:

* :func:`cross_window_assignments` joins consecutive windows of a rack into
  assignments over ``prev_*`` + current variables;
* :func:`mine_cross_window_rules` runs the standard miner over that joined
  view and keeps only genuinely *temporal* rules (those mixing ``prev_*``
  and current variables) -- e.g. boundary smoothness ``|I0 - prev_I4|`` or
  congestion persistence ``prev_cong >= k -> cong >= m``;
* :class:`SequenceEnforcer` imputes or synthesizes a window sequence,
  feeding each record's values to the next step as ``prev_*`` context, so
  the JIT enforcement machinery handles the temporal rules unchanged.

The LM itself remains record-local (it is never conditioned on previous
text); the temporal knowledge enters purely through logic -- which is the
point the paper's agenda makes about rules carrying structure that models
miss.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.dataset import variable_bounds
from ..data.telemetry import TelemetryConfig, Window, window_variables
from ..lm.base import LanguageModel
from ..rules.dsl import Rule, RuleSet
from ..rules.mining import MinerOptions, mine_rules
from .enforcer import EnforcerConfig, JitEnforcer, RecordOutcome
from .engine import EnforcementEngine

__all__ = [
    "PREV_PREFIX",
    "cross_window_assignments",
    "mine_cross_window_rules",
    "SequenceEnforcer",
]

PREV_PREFIX = "prev_"


def prev_name(name: str) -> str:
    return PREV_PREFIX + name


def cross_window_assignments(
    rack_windows: Sequence[Window],
) -> List[Dict[str, int]]:
    """Assignments over (previous window as prev_*, current window)."""
    assignments: List[Dict[str, int]] = []
    for previous, current in zip(rack_windows, rack_windows[1:]):
        joined = {prev_name(k): v for k, v in previous.variables().items()}
        joined.update(current.variables())
        assignments.append(joined)
    return assignments


def mine_cross_window_rules(
    racks: Sequence[Sequence[Window]],
    config: Optional[TelemetryConfig] = None,
    options: Optional[MinerOptions] = None,
    name: str = "cross-window",
) -> RuleSet:
    """Mine temporal rules from consecutive window pairs of each rack.

    Only rules mentioning both a ``prev_*`` and a current variable survive:
    pure-current rules duplicate the per-record set and pure-previous rules
    constrain nothing generatable.
    """
    config = config or TelemetryConfig()
    options = options or MinerOptions(
        # Identities/bursts make no sense across the boundary; keep the
        # relational families.
        identities=False,
        burst_implications=False,
    )
    assignments: List[Dict[str, int]] = []
    for rack_windows in racks:
        assignments.extend(cross_window_assignments(rack_windows))
    if not assignments:
        raise ValueError("need at least one rack with two or more windows")
    current_names = list(window_variables(config.window))
    variables = [prev_name(n) for n in current_names] + current_names
    mined = mine_rules(assignments, variables, options, name=name)
    temporal = RuleSet(name=name)
    for rule in mined:
        names = rule.variables()
        has_prev = any(n.startswith(PREV_PREFIX) for n in names)
        has_current = any(not n.startswith(PREV_PREFIX) for n in names)
        if has_prev and has_current:
            temporal.add(
                Rule(
                    name=rule.name,
                    formula=rule.formula,
                    kind="temporal-" + rule.kind,
                    source="mined",
                    description=rule.description,
                )
            )
    return temporal


class SequenceEnforcer:
    """JIT enforcement over a *sequence* of windows with temporal rules."""

    def __init__(
        self,
        model: LanguageModel,
        rules: RuleSet,
        temporal_rules: RuleSet,
        telemetry_config: Optional[TelemetryConfig] = None,
        enforcer_config: Optional[EnforcerConfig] = None,
        fallback_rules: Sequence[RuleSet] = (),
    ):
        self.telemetry_config = telemetry_config or TelemetryConfig()
        self.rules = rules
        self.temporal_rules = temporal_rules
        combined = RuleSet(name=f"{rules.name}+{temporal_rules.name}")
        for rule in rules:
            combined.add(rule)
        for rule in temporal_rules:
            combined.add(rule)
        bounds = dict(variable_bounds(self.telemetry_config))
        for name, (low, high) in list(bounds.items()):
            bounds[prev_name(name)] = (low, high)
        # Fallback tiers: the plain per-record rules (temporal dropped),
        # then whatever the caller supplied.
        tiers = [rules] + list(fallback_rules)
        self._enforcer = JitEnforcer(
            model,
            combined,
            self.telemetry_config,
            enforcer_config,
            fallback_rules=tiers,
            bounds=bounds,
        )

        # Per-record provenance of the most recent sequence call: parallel
        # to its returned records, each entry compliant-or-flagged.
        self.last_outcomes: List[RecordOutcome] = []
        # Per-sequence provenance of the most recent *batched* call, and
        # the engine that ran it (for throughput / cache summaries).
        self.last_sequence_outcomes: List[List[RecordOutcome]] = []
        self.last_engine: Optional[EnforcementEngine] = None

    @property
    def trace(self):
        return self._enforcer.trace

    def _context_from(self, record: Mapping[str, int]) -> Dict[str, int]:
        names = window_variables(self.telemetry_config.window)
        return {prev_name(n): int(record[n]) for n in names}

    def impute_sequence(
        self, windows: Sequence[Window]
    ) -> List[Dict[str, int]]:
        """Impute consecutive windows, threading prev_* context through."""
        records: List[Dict[str, int]] = []
        self.last_outcomes = []
        context: Optional[Dict[str, int]] = None
        names = set(window_variables(self.telemetry_config.window))
        for window in windows:
            outcome = self._enforcer.impute_record(window.coarse(), context)
            self.last_outcomes.append(outcome)
            record = {k: v for k, v in outcome.values.items() if k in names}
            records.append(record)
            context = self._context_from(record)
        return records

    def synthesize_sequence(self, count: int) -> List[Dict[str, int]]:
        """Generate a temporally-consistent sequence of records."""
        records: List[Dict[str, int]] = []
        self.last_outcomes = []
        context: Optional[Dict[str, int]] = None
        names = set(window_variables(self.telemetry_config.window))
        for _ in range(count):
            outcome = self._enforcer.synthesize_record(context)
            self.last_outcomes.append(outcome)
            record = {k: v for k, v in outcome.values.items() if k in names}
            records.append(record)
            context = self._context_from(record)
        return records

    # -- batched wave scheduling ----------------------------------------------
    #
    # Records *within* a sequence are serially dependent (each one's prev_*
    # context is the previous record), so a single sequence cannot batch.
    # Many sequences can: wave t imputes window t of every sequence in one
    # engine run, then threads each sequence's context forward.  Note the
    # engine assigns per-record rng streams in wave order, so batched
    # sequences are deterministic for a fixed sequence set and batch size
    # but are not byte-identical to the serial per-sequence methods.

    def impute_sequences(
        self,
        sequences: Sequence[Sequence[Window]],
        batch_size: int = 8,
        engine: Optional[EnforcementEngine] = None,
    ) -> List[List[Dict[str, int]]]:
        """Impute many window sequences in lock-step waves."""
        engine = engine or EnforcementEngine(self._enforcer, batch_size=batch_size)
        names = set(window_variables(self.telemetry_config.window))
        records: List[List[Dict[str, int]]] = [[] for _ in sequences]
        outcomes: List[List[RecordOutcome]] = [[] for _ in sequences]
        contexts: List[Optional[Dict[str, int]]] = [None] * len(sequences)
        longest = max((len(seq) for seq in sequences), default=0)
        for step in range(longest):
            active = [i for i, seq in enumerate(sequences) if step < len(seq)]
            wave = engine.impute_many(
                [sequences[i][step].coarse() for i in active],
                contexts=[contexts[i] for i in active],
            )
            for i, outcome in zip(active, wave):
                record = {k: v for k, v in outcome.values.items() if k in names}
                records[i].append(record)
                outcomes[i].append(outcome)
                contexts[i] = self._context_from(record)
        self.last_sequence_outcomes = outcomes
        self.last_outcomes = [o for seq in outcomes for o in seq]
        self.last_engine = engine
        return records

    def synthesize_sequences(
        self,
        count: int,
        length: int,
        batch_size: int = 8,
        engine: Optional[EnforcementEngine] = None,
    ) -> List[List[Dict[str, int]]]:
        """Generate ``count`` temporally-consistent sequences of ``length``."""
        engine = engine or EnforcementEngine(self._enforcer, batch_size=batch_size)
        names = set(window_variables(self.telemetry_config.window))
        records: List[List[Dict[str, int]]] = [[] for _ in range(count)]
        outcomes: List[List[RecordOutcome]] = [[] for _ in range(count)]
        contexts: List[Optional[Dict[str, int]]] = [None] * count
        for _ in range(length):
            wave = engine.synthesize_many(count, contexts=contexts)
            for i, outcome in enumerate(wave):
                record = {k: v for k, v in outcome.values.items() if k in names}
                records[i].append(record)
                outcomes[i].append(outcome)
                contexts[i] = self._context_from(record)
        self.last_sequence_outcomes = outcomes
        self.last_outcomes = [o for seq in outcomes for o in seq]
        self.last_engine = engine
        return records

    def audit_sequence(
        self, records: Sequence[Mapping[str, int]]
    ) -> Tuple[int, int]:
        """(per-record violations, temporal violations) over a sequence."""
        record_violations = sum(
            1 for record in records if not self.rules.compliant(record)
        )
        temporal_violations = 0
        for previous, current in zip(records, records[1:]):
            joined = {prev_name(k): v for k, v in previous.items()}
            joined.update(current)
            if not self.temporal_rules.compliant(joined):
                temporal_violations += 1
        return record_violations, temporal_violations
