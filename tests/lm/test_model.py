"""Transformer LM tests: shapes, causality, protocol conformance."""

import numpy as np
import pytest

from repro.lm import CharTokenizer, TransformerConfig, TransformerLM
from repro.lm.base import LanguageModel


@pytest.fixture(scope="module")
def model():
    tokenizer = CharTokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, max_len=32, d_model=32, n_heads=2,
        n_layers=2, seed=0,
    )
    return TransformerLM(config, tokenizer)


class TestTransformer:
    def test_forward_shape(self, model):
        ids = np.zeros((3, 10), dtype=np.int64)
        logits = model(ids)
        assert logits.shape == (3, 10, model.config.vocab_size)

    def test_causality(self, model):
        """Changing a future token must not affect earlier positions."""
        rng = np.random.default_rng(0)
        ids = rng.integers(2, model.config.vocab_size, (1, 12))
        base = model(ids).data.copy()
        mutated = ids.copy()
        mutated[0, 8] = (mutated[0, 8] + 1 - 2) % (model.config.vocab_size - 2) + 2
        changed = model(mutated).data
        assert np.allclose(base[0, :8], changed[0, :8], atol=1e-5)
        assert not np.allclose(base[0, 8:], changed[0, 8:], atol=1e-5)

    def test_next_distribution_protocol(self, model):
        assert isinstance(model, LanguageModel)
        probs = model.next_distribution([1, 2, 3])
        assert probs.shape == (model.config.vocab_size,)
        assert abs(probs.sum() - 1.0) < 1e-9

    def test_next_distribution_truncates_long_prefix(self, model):
        long_prefix = [2] * 100  # longer than max_len
        probs = model.next_distribution(long_prefix)
        assert abs(probs.sum() - 1.0) < 1e-9

    def test_sequence_too_long_raises(self, model):
        with pytest.raises(ValueError):
            model(np.zeros((1, 64), dtype=np.int64))

    def test_heads_divide_dim(self):
        with pytest.raises(ValueError):
            TransformerConfig(d_model=30, n_heads=4)

    def test_vocab_check(self):
        tokenizer = CharTokenizer()
        config = TransformerConfig(vocab_size=4)
        with pytest.raises(ValueError):
            TransformerLM(config, tokenizer)

    def test_deterministic_given_seed(self):
        tokenizer = CharTokenizer()
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, max_len=16, d_model=16,
            n_heads=2, n_layers=1, seed=7,
        )
        m1, m2 = TransformerLM(config, tokenizer), TransformerLM(config, tokenizer)
        ids = np.array([[2, 3, 4]])
        assert np.allclose(m1(ids).data, m2(ids).data)

    def test_parameter_count_positive(self, model):
        assert model.num_parameters() > 1000
