"""Exact simplex tests, cross-checked against scipy.optimize.linprog."""

import random
from fractions import Fraction

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.smt.lra import Simplex


def feasible_by_scipy(constraint_rows, bounds_pairs, num_vars):
    """Feasibility of {A x <= b, lo <= x <= hi} via linprog phase 1."""
    a_ub, b_ub = [], []
    for coeffs, bound in constraint_rows:
        row = [0.0] * num_vars
        for var, coeff in coeffs.items():
            row[var] = coeff
        a_ub.append(row)
        b_ub.append(bound)
    result = linprog(
        c=[0.0] * num_vars,
        A_ub=a_ub or None,
        b_ub=b_ub or None,
        bounds=bounds_pairs,
        method="highs",
    )
    return result.status == 0


class TestSimplexBasics:
    def test_unconstrained_is_feasible(self):
        simplex = Simplex()
        simplex.add_var("x")
        assert simplex.check().feasible

    def test_simple_bounds(self):
        simplex = Simplex()
        simplex.add_var("x")
        assert simplex.assert_lower("x", Fraction(2), "lo") is None
        assert simplex.assert_upper("x", Fraction(5), "hi") is None
        result = simplex.check()
        assert result.feasible
        assert Fraction(2) <= result.model["x"] <= Fraction(5)

    def test_immediate_bound_conflict(self):
        simplex = Simplex()
        simplex.add_var("x")
        simplex.assert_lower("x", Fraction(5), "lo")
        conflict = simplex.assert_upper("x", Fraction(2), "hi")
        assert conflict == {"lo", "hi"}

    def test_sum_constraint(self):
        # x + y <= 4, x >= 3, y >= 3 infeasible.
        simplex = Simplex()
        slack = simplex.slack_for({"x": 1, "y": 1})
        simplex.assert_upper(slack, Fraction(4), "sum")
        simplex.assert_lower("x", Fraction(3), "xlo")
        simplex.assert_lower("y", Fraction(3), "ylo")
        result = simplex.check()
        assert not result.feasible
        assert result.conflict <= {"sum", "xlo", "ylo"}
        assert "sum" in result.conflict

    def test_conflict_explanation_is_infeasible_subset(self):
        simplex = Simplex()
        slack = simplex.slack_for({"x": 1, "y": -1})
        simplex.assert_lower(slack, Fraction(10), "diff")  # x - y >= 10
        simplex.assert_upper("x", Fraction(3), "xhi")
        simplex.assert_lower("y", Fraction(0), "ylo")
        result = simplex.check()
        assert not result.feasible
        assert {"diff", "xhi", "ylo"} >= result.conflict
        assert len(result.conflict) >= 2

    def test_shared_slack_for_same_form(self):
        simplex = Simplex()
        first = simplex.slack_for({"x": 1, "y": 1})
        second = simplex.slack_for({"y": 1, "x": 1})
        assert first == second

    def test_single_var_form_returns_var(self):
        simplex = Simplex()
        assert simplex.slack_for({"x": 1}) == "x"

    def test_model_satisfies_rows(self):
        simplex = Simplex()
        s1 = simplex.slack_for({"x": 2, "y": 3})
        simplex.assert_lower(s1, Fraction(12), "lo")
        simplex.assert_upper("x", Fraction(3), "xhi")
        simplex.assert_upper("y", Fraction(4), "yhi")
        result = simplex.check()
        assert result.feasible
        model = result.model
        assert 2 * model["x"] + 3 * model["y"] >= 12
        assert model["x"] <= 3 and model["y"] <= 4


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_feasibility(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            num_vars = rng.randint(1, 4)
            names = [f"v{i}" for i in range(num_vars)]
            simplex = Simplex()
            bounds_pairs = []
            for index, name in enumerate(names):
                low = rng.randint(-10, 0)
                high = rng.randint(0, 10)
                simplex.add_var(name)
                simplex.assert_lower(name, Fraction(low), f"lo{index}")
                simplex.assert_upper(name, Fraction(high), f"hi{index}")
                bounds_pairs.append((low, high))
            rows = []
            failed_early = False
            for c_index in range(rng.randint(0, 4)):
                coeffs = {
                    i: rng.randint(-3, 3)
                    for i in range(num_vars)
                    if rng.random() < 0.7
                }
                coeffs = {i: c for i, c in coeffs.items() if c}
                if not coeffs:
                    continue
                bound = rng.randint(-15, 15)
                rows.append((coeffs, bound))
                named = {names[i]: c for i, c in coeffs.items()}
                slack = simplex.slack_for(named)
                conflict = simplex.assert_upper(
                    slack, Fraction(bound), f"c{c_index}"
                )
                if conflict is not None:
                    failed_early = True
                    break
            expected = feasible_by_scipy(rows, bounds_pairs, num_vars)
            if failed_early:
                assert not expected
                continue
            result = simplex.check()
            assert result.feasible == expected, (rows, bounds_pairs)
            if result.feasible:
                for coeffs, bound in rows:
                    total = sum(
                        coeff * result.model[names[i]]
                        for i, coeff in coeffs.items()
                    )
                    assert total <= bound
