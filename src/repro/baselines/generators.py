"""Synthetic-data generator baselines for the Fig. 5 comparison.

Simplified numpy reimplementations of the five SOTA generator families the
paper compares against.  Each class states its correspondence; all share
one interface: ``fit(rows)`` on an (N, F) integer array of coarse records,
``sample(n)`` returning an (n, F) integer array clipped to the physical
domain.

* :class:`NetShareLike`     -- NetShare [56]: per-field marginal modelling +
  dependence structure; here a Gaussian copula with empirical marginals.
* :class:`EWganLike`        -- E-WGAN-GP [17]: Wasserstein GAN; the gradient
  penalty is replaced by weight clipping because our autograd engine has no
  double backward (same Lipschitz intent, original WGAN form).
* :class:`CtganLike`        -- CTGAN [53]: GAN over per-field normalized
  tabular data with BCE losses.
* :class:`TvaeLike`         -- TVAE [53]: variational autoencoder with the
  reparameterization trick and analytic KL.
* :class:`RealTabFormerLike`-- REaLTabFormer [43]: an autoregressive
  character-level LM over serialized rows (shares our LM substrate).

None of them know any network rules -- exactly the property Fig. 5 exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import (
    Adam,
    Linear,
    Module,
    Tensor,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    no_grad,
)
from ..lm.ngram import NgramLM
from ..lm.sampler import sample_tokens
from ..lm.tokenizer import CharTokenizer

__all__ = [
    "TabularGenerator",
    "NetShareLike",
    "EWganLike",
    "CtganLike",
    "TvaeLike",
    "RealTabFormerLike",
]


class TabularGenerator:
    """Interface shared by every generator baseline."""

    name = "generator"

    def fit(self, rows: np.ndarray) -> "TabularGenerator":
        raise NotImplementedError

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _domain(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return rows.min(axis=0).astype(np.float64), rows.max(axis=0).astype(np.float64)

    def _clip_round(self, values: np.ndarray) -> np.ndarray:
        clipped = np.clip(values, self._low, self._high)
        return np.rint(clipped).astype(np.int64)


class NetShareLike(TabularGenerator):
    """Gaussian copula: exact empirical marginals + rank correlation."""

    name = "netshare"

    def fit(self, rows: np.ndarray) -> "NetShareLike":
        rows = np.asarray(rows, dtype=np.float64)
        self._low, self._high = self._domain(rows)
        self._sorted = np.sort(rows, axis=0)
        count, fields = rows.shape
        # Transform each field to normal scores and estimate correlation.
        normal_scores = np.empty_like(rows)
        for field in range(fields):
            ranks = rows[:, field].argsort().argsort().astype(np.float64)
            uniform = (ranks + 0.5) / count
            normal_scores[:, field] = _normal_ppf(uniform)
        correlation = np.corrcoef(normal_scores, rowvar=False)
        correlation = np.atleast_2d(correlation)
        # Regularize to positive definite before Cholesky.
        jitter = 1e-6
        while True:
            try:
                self._chol = np.linalg.cholesky(
                    correlation + jitter * np.eye(fields)
                )
                break
            except np.linalg.LinAlgError:
                jitter *= 10
        return self

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        fields = self._sorted.shape[1]
        z = rng.standard_normal((count, fields)) @ self._chol.T
        uniform = _normal_cdf(z)
        out = np.empty((count, fields))
        n = self._sorted.shape[0]
        for field in range(fields):
            index = np.clip((uniform[:, field] * n).astype(int), 0, n - 1)
            out[:, field] = self._sorted[index, field]
        return self._clip_round(out)


def _normal_cdf(x: np.ndarray) -> np.ndarray:
    from scipy.special import ndtr

    return ndtr(x)


def _normal_ppf(p: np.ndarray) -> np.ndarray:
    from scipy.special import ndtri

    return ndtri(np.clip(p, 1e-12, 1 - 1e-12))


class _MLP(Module):
    def __init__(self, dims: Sequence[int], rng: np.random.Generator, final=None):
        super().__init__()
        self.linears = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        ]
        for index, layer in enumerate(self.linears):
            self._modules[f"l{index}"] = layer
        self.final = final

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.linears[:-1]:
            x = layer(x).relu()
        x = self.linears[-1](x)
        if self.final == "tanh":
            x = x.tanh()
        return x


@dataclass
class _GanConfig:
    latent: int = 8
    hidden: int = 48
    steps: int = 500
    batch: int = 64
    lr: float = 1e-3
    critic_rounds: int = 1
    seed: int = 0


class _GanBase(TabularGenerator):
    """Shared scaffolding for the two GAN baselines."""

    config: _GanConfig

    def _normalize(self, rows: np.ndarray) -> np.ndarray:
        span = np.maximum(self._high - self._low, 1.0)
        return (2.0 * (rows - self._low) / span - 1.0).astype(np.float32)

    def _denormalize(self, values: np.ndarray) -> np.ndarray:
        span = np.maximum(self._high - self._low, 1.0)
        return (values + 1.0) / 2.0 * span + self._low

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        z = rng.standard_normal((count, self.config.latent)).astype(np.float32)
        with no_grad():
            fake = self._generator(Tensor(z)).data
        return self._clip_round(self._denormalize(fake))


class EWganLike(_GanBase):
    """Wasserstein GAN with weight clipping (E-WGAN-GP stand-in)."""

    name = "e-wgan-gp"

    def __init__(self, config: Optional[_GanConfig] = None, clip: float = 0.05):
        self.config = config or _GanConfig()
        self.clip = clip

    def fit(self, rows: np.ndarray) -> "EWganLike":
        rows = np.asarray(rows, dtype=np.float64)
        self._low, self._high = self._domain(rows)
        data = self._normalize(rows)
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        fields = data.shape[1]
        self._generator = _MLP(
            [cfg.latent, cfg.hidden, cfg.hidden, fields], rng, final="tanh"
        )
        critic = _MLP([fields, cfg.hidden, cfg.hidden, 1], rng)
        g_opt = Adam(self._generator.parameters(), lr=cfg.lr, betas=(0.5, 0.9))
        c_opt = Adam(critic.parameters(), lr=cfg.lr, betas=(0.5, 0.9))
        for _ in range(cfg.steps):
            for _ in range(cfg.critic_rounds):
                real = data[rng.integers(0, len(data), cfg.batch)]
                z = rng.standard_normal((cfg.batch, cfg.latent)).astype(np.float32)
                with no_grad():
                    fake = self._generator(Tensor(z)).data
                loss_c = critic(Tensor(fake)).mean() - critic(Tensor(real)).mean()
                c_opt.zero_grad()
                loss_c.backward()
                c_opt.step()
                for param in critic.parameters():  # Lipschitz via clipping
                    np.clip(param.data, -self.clip, self.clip, out=param.data)
            z = rng.standard_normal((cfg.batch, cfg.latent)).astype(np.float32)
            loss_g = -critic(self._generator(Tensor(z))).mean()
            g_opt.zero_grad()
            loss_g.backward()
            g_opt.step()
        self._generator.eval()
        return self


class CtganLike(_GanBase):
    """Vanilla GAN with BCE losses over normalized tabular rows."""

    name = "ctgan"

    def __init__(self, config: Optional[_GanConfig] = None):
        self.config = config or _GanConfig()

    def fit(self, rows: np.ndarray) -> "CtganLike":
        rows = np.asarray(rows, dtype=np.float64)
        self._low, self._high = self._domain(rows)
        data = self._normalize(rows)
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        fields = data.shape[1]
        self._generator = _MLP(
            [cfg.latent, cfg.hidden, cfg.hidden, fields], rng, final="tanh"
        )
        discriminator = _MLP([fields, cfg.hidden, cfg.hidden, 1], rng)
        g_opt = Adam(self._generator.parameters(), lr=cfg.lr, betas=(0.5, 0.9))
        d_opt = Adam(discriminator.parameters(), lr=cfg.lr, betas=(0.5, 0.9))
        ones = np.ones((cfg.batch, 1), dtype=np.float32)
        zeros = np.zeros((cfg.batch, 1), dtype=np.float32)
        for _ in range(cfg.steps):
            real = data[rng.integers(0, len(data), cfg.batch)]
            z = rng.standard_normal((cfg.batch, cfg.latent)).astype(np.float32)
            with no_grad():
                fake = self._generator(Tensor(z)).data
            loss_d = binary_cross_entropy_with_logits(
                discriminator(Tensor(real)), ones
            ) + binary_cross_entropy_with_logits(discriminator(Tensor(fake)), zeros)
            d_opt.zero_grad()
            loss_d.backward()
            d_opt.step()
            z = rng.standard_normal((cfg.batch, cfg.latent)).astype(np.float32)
            loss_g = binary_cross_entropy_with_logits(
                discriminator(self._generator(Tensor(z))), ones
            )
            g_opt.zero_grad()
            loss_g.backward()
            g_opt.step()
        self._generator.eval()
        return self


class TvaeLike(TabularGenerator):
    """Variational autoencoder over normalized rows (TVAE stand-in)."""

    name = "tvae"

    def __init__(
        self,
        latent: int = 4,
        hidden: int = 48,
        steps: int = 600,
        batch: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.latent = latent
        self.hidden = hidden
        self.steps = steps
        self.batch = batch
        self.lr = lr
        self.seed = seed

    def fit(self, rows: np.ndarray) -> "TvaeLike":
        rows = np.asarray(rows, dtype=np.float64)
        self._low, self._high = self._domain(rows)
        span = np.maximum(self._high - self._low, 1.0)
        data = ((rows - self._low) / span).astype(np.float32)
        rng = np.random.default_rng(self.seed)
        fields = data.shape[1]
        self._encoder = _MLP([fields, self.hidden, 2 * self.latent], rng)
        self._decoder = _MLP([self.latent, self.hidden, fields], rng)
        params = self._encoder.parameters() + self._decoder.parameters()
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.steps):
            batch = data[rng.integers(0, len(data), self.batch)]
            stats = self._encoder(Tensor(batch))
            mu = stats[:, : self.latent]
            log_var = stats[:, self.latent :]
            epsilon = Tensor(
                rng.standard_normal((len(batch), self.latent)).astype(np.float32)
            )
            z = mu + (log_var * 0.5).exp() * epsilon
            reconstruction = self._decoder(z).sigmoid()
            recon_loss = ((reconstruction - Tensor(batch)) ** 2).sum(axis=1).mean()
            kl = (
                ((mu * mu) + log_var.exp() - log_var - 1.0).sum(axis=1).mean()
                * 0.5
            )
            loss = recon_loss + 0.05 * kl
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(params, 5.0)
            optimizer.step()
        self._encoder.eval()
        self._decoder.eval()
        return self

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        z = rng.standard_normal((count, self.latent)).astype(np.float32)
        with no_grad():
            decoded = self._decoder(Tensor(z)).sigmoid().data
        span = np.maximum(self._high - self._low, 1.0)
        return self._clip_round(decoded * span + self._low)


class RealTabFormerLike(TabularGenerator):
    """Autoregressive LM over serialized rows (REaLTabFormer stand-in).

    Uses the Witten-Bell n-gram backend by default for training speed; the
    point of this baseline is "GPT-style tabular generator without rules",
    which is architecture-independent here just as in the paper.
    """

    name = "realtabformer"

    def __init__(self, order: int = 6, seed: int = 0):
        self.order = order
        self.seed = seed
        self._tokenizer = CharTokenizer()

    def fit(self, rows: np.ndarray) -> "RealTabFormerLike":
        rows = np.asarray(rows, dtype=np.int64)
        self._low, self._high = self._domain(rows)
        self._fields = rows.shape[1]
        texts = [" ".join(str(int(v)) for v in row) + "\n" for row in rows]
        self._lm = NgramLM(order=self.order, tokenizer=self._tokenizer).fit(texts)
        return self

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng(self.seed)
        out = np.zeros((count, self._fields), dtype=np.int64)
        for row in range(count):
            values = self._sample_row(rng)
            out[row] = values
        return out

    def _sample_row(self, rng: np.random.Generator) -> np.ndarray:
        tokenizer = self._tokenizer
        for _ in range(50):  # resample until the row parses
            ids = sample_tokens(
                self._lm,
                tokenizer.encode(""),
                stop_id=tokenizer.record_end_id,
                max_new_tokens=8 * self._fields,
                rng=rng,
            )
            parts = tokenizer.decode(ids).strip().split()
            if len(parts) != self._fields:
                continue
            try:
                values = np.array([int(p) for p in parts], dtype=np.float64)
            except ValueError:
                continue
            return self._clip_round(values[None, :])[0]
        return np.rint(self._low).astype(np.int64)
