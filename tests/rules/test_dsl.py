"""Rule DSL and RuleSet tests."""

import pytest

from repro.rules import Rule, RuleSet, var
from repro.smt import And, Ge, Le


def bound_rule(name, low, high):
    return Rule(
        name=name,
        formula=And(Ge(var(name.split("-")[0]), low), Le(var(name.split("-")[0]), high)),
        kind="bound",
    )


class TestRuleSet:
    def test_add_and_lookup(self):
        rules = RuleSet([bound_rule("x-dom", 0, 5)])
        assert "x-dom" in rules
        assert rules["x-dom"].kind == "bound"
        assert len(rules) == 1

    def test_duplicate_name_rejected(self):
        rules = RuleSet([bound_rule("x-dom", 0, 5)])
        with pytest.raises(ValueError):
            rules.add(bound_rule("x-dom", 0, 9))

    def test_violations(self):
        rules = RuleSet([bound_rule("x-dom", 0, 5), bound_rule("y-dom", 0, 5)])
        broken = rules.violations({"x": 7, "y": 3})
        assert [r.name for r in broken] == ["x-dom"]
        assert rules.compliant({"x": 2, "y": 3})

    def test_by_kind(self):
        rules = RuleSet(
            [
                bound_rule("x-dom", 0, 5),
                Rule("imp", Ge(var("x"), 0), kind="implication"),
            ]
        )
        assert len(rules.by_kind("bound")) == 1
        assert len(rules.by_kind("implication")) == 1

    def test_restricted_to(self):
        rules = RuleSet(
            [
                Rule("only-x", Ge(var("x"), 0)),
                Rule("x-and-y", Ge(var("x") + var("y"), 0)),
            ]
        )
        restricted = rules.restricted_to(["x"])
        assert [r.name for r in restricted] == ["only-x"]

    def test_variables_collects_all(self):
        rules = RuleSet(
            [Rule("a", Ge(var("p"), 0)), Rule("b", Le(var("q") + var("p"), 3))]
        )
        assert set(rules.variables()) == {"p", "q"}

    def test_conjunction_semantics(self):
        rules = RuleSet([bound_rule("x-dom", 0, 5), bound_rule("y-dom", 0, 5)])
        conj = rules.conjunction()
        assert conj.evaluate({"x": 1, "y": 1})
        assert not conj.evaluate({"x": 9, "y": 1})

    def test_summary(self):
        rules = RuleSet(
            [
                bound_rule("x-dom", 0, 5),
                bound_rule("y-dom", 0, 5),
                Rule("imp", Ge(var("x"), 0), kind="implication"),
            ]
        )
        assert rules.summary() == {"bound": 2, "implication": 1}

    def test_iteration_preserves_order(self):
        rules = RuleSet([bound_rule("b-dom", 0, 1), bound_rule("a-dom", 0, 1)])
        assert [r.name for r in rules] == ["b-dom", "a-dom"]
