"""The one shared formatter for single-line ``key=value`` stderr records.

Every operator-facing diagnostic line in the repo -- the CLI's degradation
and throughput summaries, the serving scheduler's summary line, the bench
drivers -- goes through :func:`format_kv`, so log scrapers can rely on one
quoting convention: a value containing whitespace, ``=``, or ``"`` is
double-quoted with ``\\`` and ``"`` backslash-escaped; everything else is
emitted bare.  Keys must already be scraper-safe (no spaces or ``=``);
:func:`format_kv` rejects ones that are not, since a malformed key would
silently corrupt every downstream parse.
"""

from __future__ import annotations

import re
import sys
import time
from typing import IO, Callable, Iterable, Mapping, Optional, Tuple, Union

__all__ = ["format_kv", "kv_line", "emit_kv", "parse_kv", "ProgressEmitter"]

Pairs = Union[Mapping[str, object], Iterable[Tuple[str, object]]]

_NEEDS_QUOTING = re.compile(r'[\s="]')
_BAD_KEY = re.compile(r'[\s="]|^$')

# key := anything format_kv accepts (no whitespace, '=', or '"');
# value := bare token | double-quoted string with \" and \\ escapes
_TOKEN = re.compile(r'([^\s="]+)=("(?:[^"\\]|\\.)*"|\S*)')


def _format_value(value: object) -> str:
    if isinstance(value, float):
        text = repr(value)
    else:
        text = str(value)
    if text == "" or _NEEDS_QUOTING.search(text):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def format_kv(pairs: Pairs) -> str:
    """Render ``key=value`` pairs as one space-separated line."""
    items = pairs.items() if isinstance(pairs, Mapping) else pairs
    out = []
    for key, value in items:
        if _BAD_KEY.search(str(key)):
            raise ValueError(f"unscrapeable key=value key: {key!r}")
        out.append(f"{key}={_format_value(value)}")
    return " ".join(out)


def kv_line(event: str, pairs: Pairs) -> str:
    """An event-tagged record: ``<event> k1=v1 k2=v2 ...``."""
    if _BAD_KEY.search(event):
        raise ValueError(f"unscrapeable event tag: {event!r}")
    body = format_kv(pairs)
    return f"{event} {body}" if body else event


def emit_kv(event: str, pairs: Pairs, stream: Optional[IO[str]] = None) -> None:
    """Print one record to ``stream`` (stderr by default, flushed)."""
    print(kv_line(event, pairs), file=stream or sys.stderr, flush=True)


class ProgressEmitter:
    """Periodic ``key=value`` progress records for long-lived drivers.

    A driver that runs unbounded (``repro.cli stream --follow``) never
    reaches its end-of-run summary line, so operators would see nothing.
    This emitter rate-limits interim records instead: :meth:`tick` emits
    one ``event`` record whenever ``every`` more units of work have
    completed *or* ``interval`` seconds have passed since the last record,
    whichever comes first.  ``pairs`` is a callable so the snapshot is
    only computed when a record is actually due.
    """

    def __init__(
        self,
        event: str,
        pairs: Callable[[], Pairs],
        every: int = 100,
        interval: float = 10.0,
        stream: Optional[IO[str]] = None,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.event = event
        self.pairs = pairs
        self.every = every
        self.interval = interval
        self.stream = stream
        self.emitted = 0
        self._count = 0
        self._last_count = 0
        self._last_time = time.monotonic()

    def tick(self, units: int = 1) -> bool:
        """Count ``units`` of progress; True if a record was emitted."""
        self._count += units
        now = time.monotonic()
        if (
            self._count - self._last_count < self.every
            and now - self._last_time < self.interval
        ):
            return False
        self._last_count = self._count
        self._last_time = now
        emit_kv(self.event, self.pairs(), stream=self.stream)
        self.emitted += 1
        return True

    def finish(self, event: Optional[str] = None) -> None:
        """The final record, unconditionally (bounded runs get closure)."""
        emit_kv(event or self.event, self.pairs(), stream=self.stream)
        self.emitted += 1


def parse_kv(line: str) -> Tuple[Optional[str], dict]:
    """Inverse of :func:`kv_line` (used by tests and log scrapers).

    Returns ``(event, pairs)``; ``event`` is None when the line starts
    directly with a ``key=value`` token.
    """
    line = line.strip()
    event: Optional[str] = None
    if line and "=" not in line.split(None, 1)[0]:
        event, _, line = line.partition(" ")
    pairs = {}
    for match in _TOKEN.finditer(line):
        key, raw = match.group(1), match.group(2)
        if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
            raw = re.sub(r"\\(.)", r"\1", raw[1:-1])
        pairs[key] = raw
    return event, pairs
