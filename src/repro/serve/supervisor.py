"""Supervised multi-process worker pool: the fault-tolerant serving router.

The single-process :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`
shares one fate with its caller: a segfaulting solver, an OOM-killed model,
or a wedged native call takes the whole server down.  This module splits
the serving layer across a process boundary:

* the **parent router** (:class:`WorkerPool`) owns only restartable state
  -- the admission queue, request handles, deadlines, retry bookkeeping,
  and aggregated metrics;
* each **worker process** (:mod:`repro.serve.workers`) owns everything
  expensive and corruptible -- lanes, LM weights, KV cache, solver pool,
  oracle cache -- and runs an in-process continuous-batching scheduler.

Supervision, all on one supervisor thread (no locks around routing state):

* **liveness** -- workers heartbeat every ``heartbeat_interval``; a worker
  silent past ``liveness_timeout`` is declared hung, SIGKILLed, and
  treated as crashed (catches native-code wedges cooperative checkpoints
  can't);
* **crash recovery** -- a dead worker's in-flight records are requeued and
  replayed on a healthy worker.  Replay is byte-identical because record
  ``i`` of seed ``s`` always samples ``record_rng(s, i)`` (jobs carry
  their absolute index via ``RequestSpec.index_offset``).  After
  ``max_unit_retries`` replays a record fails its request with
  :class:`~repro.errors.WorkerCrashed` -- bounded, never infinite;
* **restart with backoff** -- crashed workers restart after an exponential
  delay (``backoff_base * 2^k`` capped at ``backoff_cap``);
* **circuit breaker** -- ``breaker_threshold`` crashes within
  ``breaker_window`` seconds trips a worker's breaker: it cools down for
  ``breaker_cooldown`` before the next (half-open) restart attempt.  When
  *every* worker is tripped the pool sheds new submissions with
  :class:`~repro.errors.WorkerPoolUnavailable` (HTTP 503 + Retry-After)
  instead of queueing behind a crash loop.

The pool exposes the same surface as the scheduler (``submit`` /
``impute`` / ``synthesize`` / ``metrics`` / ``health`` /
``prometheus_text`` / ``summary_line`` / ``stop(drain=...)``), so
:class:`~repro.serve.http.ServingServer` and the CLI swap between them
with a flag (``serve --workers N``).
"""

from __future__ import annotations

import itertools
import logging
import math
import multiprocessing
import os
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..core.enforcer import JitEnforcer
from ..core.session import RecordOutcome
from ..errors import (
    DeadlineExceeded,
    RequestCancelled,
    ServerClosed,
    UnknownRuleSet,
    WorkerCrashed,
    WorkerPoolUnavailable,
)
from ..rules.registry import RuleSetHandle, RuleSetRegistry
from ..obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    OBS,
    MetricsRegistry,
    Sample,
    SLOConfig,
    SLOTracker,
    format_kv,
)
from ..obs.prometheus import render
from .queue import AdmissionQueue
from .scheduler import _percentile
from .types import RequestSpec, ServeRequest, ServeResult
from .workers import WorkerConfig, resolve_error, worker_main

__all__ = ["WorkerPool", "WorkerHandle"]

logger = logging.getLogger(__name__)

# Worker lifecycle states (kept as strings: they go straight into /healthz).
STARTING = "starting"  # process spawned, enforcer still building
READY = "ready"  # heartbeating and accepting jobs
BACKOFF = "backoff"  # crashed; waiting out the exponential restart delay
BROKEN = "broken"  # breaker tripped; cooling down before half-open retry
STOPPED = "stopped"  # exited cleanly during shutdown

_LM_STAT_KEYS = ("records_completed", "lm_calls", "lm_rows")


@dataclass
class _PoolUnit:
    """One record's worth of routed work (parent-side bookkeeping)."""

    request: ServeRequest
    index: int  # record index within the request (relative)
    retries: int = 0  # crash replays consumed so far
    cancel_sent: bool = False

    @property
    def abs_index(self) -> int:
        return self.request.spec.index_offset + self.index


@dataclass
class WorkerHandle:
    """The parent's view of one worker slot (a slot survives restarts)."""

    worker_id: int
    process: Optional[Any] = None
    conn: Optional[Any] = None
    state: str = STARTING
    pid: Optional[int] = None
    last_seen: float = 0.0
    started_at: float = 0.0
    restart_at: float = 0.0
    restarts: int = 0  # respawns after the initial start
    failures: Deque[float] = field(default_factory=deque)  # crash timestamps
    inflight: Dict[int, _PoolUnit] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)  # last heartbeat
    # The worker-side MetricsRegistry snapshot shipped in the last
    # heartbeat (a list of Sample rows); the parent re-exposes them under
    # a ``worker`` label so per-process series survive into /metrics.
    metric_samples: List[Sample] = field(default_factory=list)
    shutdown_sent: bool = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


def _pool_samples(pool: "WorkerPool") -> List[Sample]:
    """Worker-lifecycle and request counters for Prometheus exposition.

    Request-level series reuse the ``repro_serve_*`` names the scheduler
    exports so dashboards work unchanged whichever backend serves; the
    ``repro_pool_*`` series are supervision-specific.
    """
    healthy = pool._healthy_workers()
    lm = pool._aggregate_worker_stats()
    samples = [
        Sample.counter("repro_serve_requests_submitted_total", pool.submitted,
                       help="Requests accepted into the admission queue"),
        Sample.counter("repro_serve_requests_completed_total", pool.completed,
                       help="Requests finished successfully"),
        Sample.counter("repro_serve_requests_failed_total", pool.failed,
                       help="Requests failed by an enforcement error"),
        Sample.counter("repro_serve_requests_cancelled_total",
                       pool.cancelled + pool.queue.reaped_cancelled,
                       help="Requests cancelled by the client"),
        Sample.counter("repro_serve_requests_expired_total",
                       pool.expired + pool.queue.reaped_expired,
                       help="Requests that blew their deadline"),
        Sample.counter("repro_serve_requests_rejected_total",
                       pool.queue.rejected + pool.shed,
                       help="Requests rejected by backpressure or shedding"),
        Sample.counter("repro_serve_records_completed_total",
                       pool.records_completed,
                       help="Records emitted across all requests"),
        Sample.gauge("repro_serve_queue_depth", len(pool.queue),
                     help="Requests currently waiting for a worker"),
        Sample.counter("repro_pool_worker_crashes_total", pool.worker_crashes,
                       help="Worker processes lost (exit or liveness kill)"),
        Sample.counter("repro_pool_worker_restarts_total",
                       pool.worker_restarts,
                       help="Worker processes respawned by the supervisor"),
        Sample.counter("repro_pool_units_retried_total", pool.units_retried,
                       help="Records replayed after a worker crash"),
        Sample.counter("repro_pool_units_lost_total", pool.units_lost,
                       help="Records failed after exhausting crash replays"),
        Sample.counter("repro_pool_breaker_trips_total", pool.breaker_trips,
                       help="Per-worker circuit breaker activations"),
        Sample.counter("repro_pool_shed_total", pool.shed,
                       help="Submissions shed while the breaker was open"),
        Sample.gauge("repro_pool_workers", pool.workers,
                     help="Configured worker processes"),
        Sample.gauge("repro_pool_workers_healthy", healthy,
                     help="Workers currently heartbeating and taking jobs"),
        Sample.gauge("repro_pool_breaker_open",
                     1.0 if pool.breaker_open else 0.0,
                     help="1 when every worker's breaker is tripped"),
        Sample.counter("repro_pool_lm_calls_total", lm["lm_calls"],
                       help="Batched model invocations across workers"),
        Sample.counter("repro_pool_lm_rows_total", lm["lm_rows"],
                       help="Batched model rows across workers"),
    ]
    for tenant, row in sorted(pool.tenant_stats().items()):
        labels = {"tenant": tenant}
        samples.append(Sample.counter(
            "repro_serve_tenant_requests_completed_total", row["completed"],
            labels=labels, help="Requests finished per rule-pack tenant",
        ))
        samples.append(Sample.counter(
            "repro_serve_tenant_requests_failed_total", row["failed"],
            labels=labels, help="Requests failed per rule-pack tenant",
        ))
        samples.append(Sample.counter(
            "repro_serve_tenant_records_completed_total", row["records"],
            labels=labels, help="Records emitted per rule-pack tenant",
        ))
    # Per-worker series: a liveness gauge per slot plus the worker's own
    # registry snapshot (shipped in heartbeats) re-labelled with the slot
    # id.  Worker-side families (repro_serve_*, repro_enforcer_*,
    # repro_slo_*) thereby coexist with the parent's aggregate series --
    # the exposition renderer groups by family name, and the extra
    # ``worker`` label keeps the series distinct.
    for handle in pool._handles:
        worker = str(handle.worker_id)
        samples.append(Sample.gauge(
            "repro_worker_up", 1.0 if handle.state == READY else 0.0,
            labels={"worker": worker},
            help="1 when the worker slot is heartbeating and taking jobs",
        ))
        for sample in handle.metric_samples:
            samples.append(Sample(
                sample.name,
                sample.value,
                tuple(sorted(dict(sample.labels, worker=worker).items())),
                sample.type,
                sample.help,
            ))
    return samples


class WorkerPool:
    """Supervised multi-process serving pool (see module docstring).

    ``enforcer_factory`` builds one :class:`JitEnforcer` *inside each
    worker process*; it must be deterministic so restarted workers replay
    records byte-identically.  The parent never builds an enforcer --
    model weights live only in workers.
    """

    def __init__(
        self,
        enforcer_factory: Callable[[], JitEnforcer],
        workers: int = 2,
        lanes_per_worker: int = 2,
        queue_depth: int = 64,
        heartbeat_interval: float = 0.1,
        liveness_timeout: float = 2.0,
        startup_timeout: float = 120.0,
        max_unit_retries: int = 2,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        breaker_threshold: int = 3,
        breaker_window: float = 10.0,
        breaker_cooldown: float = 2.0,
        max_inflight_per_worker: Optional[int] = None,
        solver_pool: Optional[int] = 64,
        cache_entries: Optional[int] = None,
        latency_window: int = 4096,
        start_method: Optional[str] = None,
        slow_start_s: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        rule_registry: Optional[RuleSetRegistry] = None,
        tenant_quotas: Optional[Mapping[str, int]] = None,
        tenant_priorities: Optional[Mapping[str, int]] = None,
        latency_buckets: Optional[Sequence[float]] = None,
        slo: Optional[SLOConfig] = None,
        span_sink: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if lanes_per_worker < 1:
            raise ValueError("lanes_per_worker must be >= 1")
        self.enforcer_factory = enforcer_factory
        self.workers = workers
        self.lanes_per_worker = lanes_per_worker
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.startup_timeout = startup_timeout
        self.max_unit_retries = max_unit_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.breaker_cooldown = breaker_cooldown
        # A little dispatch headroom over the lane count keeps a worker's
        # admission queue primed without parking many records on a process
        # that might die (each parked record is a potential replay).
        self.max_inflight_per_worker = (
            max_inflight_per_worker
            if max_inflight_per_worker is not None
            else lanes_per_worker * 2
        )
        self.solver_pool = solver_pool
        self.cache_entries = cache_entries
        self.slow_start_s = slow_start_s
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method

        self.queue = AdmissionQueue(
            queue_depth,
            tenant_quotas=tenant_quotas,
            tenant_priorities=tenant_priorities,
        )
        # -- multi-tenant rule sets -------------------------------------------
        # The parent resolves every request's pack at submission and ships
        # jobs by content hash; workers are seeded with a registry snapshot
        # at spawn and kept current by ("rules", event) broadcasts, which
        # the supervisor thread drains from this deque.
        self.rule_registry = rule_registry
        self._rule_events: Deque[Dict[str, object]] = deque()
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        if rule_registry is not None:
            rule_registry.subscribe(self._rule_events.append)
        self._handles: List[WorkerHandle] = [
            WorkerHandle(worker_id=i) for i in range(workers)
        ]
        self._ready_units: Deque[_PoolUnit] = deque()
        self._unit_ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._drain = True
        self._started_at: Optional[float] = None
        # Stats of dead worker incarnations, so LM counters survive restarts.
        self._retired_stats = {key: 0 for key in _LM_STAT_KEYS}

        # -- metrics (ints under the GIL; the reservoir under its lock) -------
        self._metrics_lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.expired = 0
        self.shed = 0  # submissions refused by the open breaker
        self.records_completed = 0
        self.dispatched = 0  # jobs sent to workers (includes replays)
        self.worker_crashes = 0
        self.worker_restarts = 0
        self.units_retried = 0
        self.units_lost = 0
        self.breaker_trips = 0

        self.registry = registry if registry is not None else OBS.registry
        self.latency_buckets = (
            tuple(float(b) for b in latency_buckets)
            if latency_buckets is not None
            else DEFAULT_LATENCY_BUCKETS_MS
        )
        self._latency_hist = self.registry.histogram(
            "repro_serve_request_latency_ms",
            self.latency_buckets,
            help="End-to-end request latency (submit to final record)",
        )
        # Request-level SLO accounting lives on the router: every request
        # resolves exactly once here (result, typed error, or reap), which
        # is the one place per-tenant burn rates can be counted without
        # double-observing crash replays.
        self.slo = SLOTracker(slo)
        self.registry.register_collector(
            "worker_pool_slo", lambda pool: pool.slo.samples(), owner=self
        )
        # Base path for per-worker span sinks; each (re)spawn gets its own
        # ``<base>.w<id>.g<generation>`` file (sinks open with mode "w", so
        # a respawn must never reuse its predecessor's filename).
        self.span_sink = os.fspath(span_sink) if span_sink is not None else None
        self.registry.register_collector("worker_pool", _pool_samples,
                                         owner=self)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._thread is not None:
            raise RuntimeError("worker pool already started")
        self._started_at = time.monotonic()
        now = self._started_at
        for handle in self._handles:
            self._spawn(handle, now)
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down; with ``drain`` finish all admitted work first."""
        self.queue.close(drain=drain)
        self._drain = drain
        self._stopping = True
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def lanes(self) -> int:
        """Total enforcement lanes across the pool (capacity analogue)."""
        return self.workers * self.lanes_per_worker

    @property
    def breaker_open(self) -> bool:
        """True when no worker slot can make progress (all tripped)."""
        return all(handle.state == BROKEN for handle in self._handles)

    # -- submission ----------------------------------------------------------------

    def submit(self, spec: RequestSpec) -> ServeRequest:
        """Enqueue a request; returns its live handle immediately.

        Raises :class:`~repro.errors.QueueFull` under backpressure,
        :class:`~repro.errors.WorkerPoolUnavailable` while the breaker
        sheds, and :class:`~repro.errors.ServerClosed` after shutdown.
        """
        if self._thread is None or not self._thread.is_alive():
            raise ServerClosed("worker pool is not running")
        if self.breaker_open:
            self.shed += 1
            raise WorkerPoolUnavailable(
                "all workers are crash-looping; shedding load",
                retry_after=max(1, math.ceil(self.breaker_cooldown)),
            )
        handle = self._resolve_rule_set(spec)
        request = ServeRequest(spec)
        request.rule_handle = handle
        self.queue.submit(request)  # raises QueueFull / ServerClosed
        self.submitted += 1
        return request

    def _resolve_rule_set(self, spec: RequestSpec) -> Optional[RuleSetHandle]:
        """Pin the pack version this request will enforce (parent-side).

        Resolving *before* queueing means 404/409 surface synchronously,
        and dispatch ships the pinned content hash -- so a promote or even
        a retire after submission never changes what an admitted record
        (or its crash replay) enforces.
        """
        if spec.rule_set is None:
            return None
        if self.rule_registry is None:
            raise UnknownRuleSet(
                f"request named rule pack {spec.rule_set!r} but this server "
                "has no rule-set registry configured"
            )
        return self.rule_registry.resolve(spec.rule_set)

    def impute(
        self,
        coarse: Mapping[str, int],
        context: Optional[Mapping[str, int]] = None,
        seed: Optional[int] = None,
        priority: int = 0,
        timeout_ms: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        rule_set: Optional[str] = None,
    ) -> ServeResult:
        """Synchronous imputation round-trip (submit + wait)."""
        request = self.submit(
            RequestSpec(
                "impute",
                coarse=coarse,
                context=context,
                seed=seed,
                priority=priority,
                timeout_ms=timeout_ms,
                rule_set=rule_set,
            )
        )
        return request.result(wait_timeout)

    def synthesize(
        self,
        count: int = 1,
        context: Optional[Mapping[str, int]] = None,
        seed: Optional[int] = None,
        priority: int = 0,
        timeout_ms: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        rule_set: Optional[str] = None,
    ) -> ServeResult:
        """Synchronous synthesis round-trip (submit + wait)."""
        request = self.submit(
            RequestSpec(
                "synthesize",
                count=count,
                context=context,
                seed=seed,
                priority=priority,
                timeout_ms=timeout_ms,
                rule_set=rule_set,
            )
        )
        return request.result(wait_timeout)

    # -- the supervisor loop -----------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                now = time.monotonic()
                self._reap(now)
                self._restart_due(now)
                self._broadcast_rules()
                self._scan_inflight(now)
                self._admit(now)
                self._dispatch(now)
                if self._stopping and self._drained():
                    break
                self._poll()
        except BaseException as exc:  # pragma: no cover -- crash backstop
            logger.exception("supervisor loop died: %s", exc)
            self._fail_everything(exc)
            raise
        finally:
            self._shutdown_workers()

    def _drained(self) -> bool:
        if not self._drain:
            self._fail_everything(ServerClosed("server shut down"))
            return True
        inflight = any(handle.inflight for handle in self._handles)
        return not inflight and not self._ready_units and not len(self.queue)

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, handle: WorkerHandle, now: float) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        config = WorkerConfig(
            worker_id=handle.worker_id,
            enforcer_factory=self.enforcer_factory,
            lanes=self.lanes_per_worker,
            queue_depth=max(self.max_inflight_per_worker * 2, 8),
            solver_pool=self.solver_pool,
            cache_entries=self.cache_entries,
            heartbeat_interval=self.heartbeat_interval,
            slow_start_s=self.slow_start_s,
            # A fresh snapshot per (re)spawn: restarted workers come back
            # knowing every pack registered since the pool started, so a
            # replayed job's hash ref always resolves.
            registry_snapshot=(
                self.rule_registry.snapshot()
                if self.rule_registry is not None
                else None
            ),
            # Generation-suffixed sink: restart k of worker i traces into
            # ``<base>.w<i>.g<k>`` so crash replays never clobber the spans
            # the dead incarnation already flushed.
            span_sink=(
                f"{self.span_sink}.w{handle.worker_id}.g{handle.restarts}"
                if self.span_sink is not None
                else None
            ),
            scheduler_kwargs={"latency_buckets": self.latency_buckets},
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, config),
            name=f"repro-worker-{handle.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker's end lives only in the worker
        handle.process = process
        handle.conn = parent_conn
        handle.state = STARTING
        handle.pid = process.pid
        handle.last_seen = now
        handle.started_at = now
        handle.shutdown_sent = False
        handle.stats = {}

    def _reap(self, now: float) -> None:
        """Detect dead and hung workers; turn both into crash recoveries."""
        for handle in self._handles:
            if handle.state not in (STARTING, READY):
                continue
            if not handle.alive:
                code = handle.process.exitcode if handle.process else None
                self._on_worker_down(handle, now, f"exited with code {code}")
                continue
            silent = now - handle.last_seen
            limit = (
                self.startup_timeout
                if handle.state == STARTING
                else self.liveness_timeout
            )
            if silent > limit:
                # Hung (e.g. wedged in native solver code): the cooperative
                # checkpoint can't fire, so the supervisor kills from outside.
                self._kill(handle)
                self._on_worker_down(
                    handle, now, f"liveness timeout ({silent:.1f}s silent)"
                )

    def _kill(self, handle: WorkerHandle) -> None:
        if handle.process is not None and handle.process.is_alive():
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except (OSError, TypeError):  # pragma: no cover -- already gone
                pass
            handle.process.join(timeout=5)

    def _on_worker_down(
        self, handle: WorkerHandle, now: float, reason: str
    ) -> None:
        logger.warning(
            "worker %d (pid %s) down: %s; %d record(s) in flight",
            handle.worker_id, handle.pid, reason, len(handle.inflight),
        )
        self.worker_crashes += 1
        self._retire_stats(handle)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            handle.conn = None
        if handle.process is not None:
            handle.process.join(timeout=1)
            handle.process = None
        self._requeue_inflight(handle)
        # Breaker bookkeeping: crashes inside the sliding window.
        handle.failures.append(now)
        while handle.failures and now - handle.failures[0] > self.breaker_window:
            handle.failures.popleft()
        if len(handle.failures) >= self.breaker_threshold:
            handle.state = BROKEN
            handle.restart_at = now + self.breaker_cooldown
            self.breaker_trips += 1
            logger.warning(
                "worker %d breaker open: %d crashes in %.1fs; cooling %.1fs",
                handle.worker_id, len(handle.failures),
                self.breaker_window, self.breaker_cooldown,
            )
        else:
            handle.state = BACKOFF
            delay = min(
                self.backoff_cap,
                self.backoff_base * (2 ** max(0, len(handle.failures) - 1)),
            )
            handle.restart_at = now + delay

    def _requeue_inflight(self, handle: WorkerHandle) -> None:
        """Replay (or give up on) every record the dead worker held.

        Requeued units go to the *front* so replayed records keep their
        latency budget tight; each replay is byte-identical to what the
        dead worker would have produced.
        """
        units = list(handle.inflight.values())
        handle.inflight.clear()
        for unit in reversed(units):
            request = unit.request
            if request.done:
                continue
            unit.retries += 1
            unit.cancel_sent = False
            if unit.retries > self.max_unit_retries:
                self.units_lost += 1
                if request.fail(WorkerCrashed(
                    f"record {unit.abs_index} lost to {unit.retries} worker "
                    f"crashes (request {request.id})"
                )):
                    self.failed += 1
                    self.slo.observe(
                        request.tenant, request.latency_ms, ok=False
                    )
                continue
            self.units_retried += 1
            self._ready_units.appendleft(unit)

    def _restart_due(self, now: float) -> None:
        if self._stopping:
            return  # no respawns once shutdown began
        for handle in self._handles:
            if handle.state in (BACKOFF, BROKEN) and now >= handle.restart_at:
                self.worker_restarts += 1
                handle.restarts += 1
                self._spawn(handle, now)

    def _retire_stats(self, handle: WorkerHandle) -> None:
        for key in _LM_STAT_KEYS:
            self._retired_stats[key] += int(handle.stats.get(key, 0))
        handle.stats = {}

    def _broadcast_rules(self) -> None:
        """Forward queued registry mutations to every live worker.

        Workers spawned after an event already carry it in their snapshot;
        ``apply_event`` ignores duplicate registers, so the overlap window
        between snapshot and broadcast is harmless.
        """
        while self._rule_events:
            event = self._rule_events.popleft()
            for handle in self._handles:
                if handle.conn is None or handle.state not in (
                    STARTING, READY
                ):
                    continue
                try:
                    handle.conn.send(("rules", event))
                except (BrokenPipeError, OSError):
                    pass  # the reaper will claim this worker shortly

    # -- routing -----------------------------------------------------------------

    def _admit(self, now: float) -> None:
        """Expand queued requests into routable single-record units."""
        capacity = sum(
            self.max_inflight_per_worker - len(handle.inflight)
            for handle in self._handles
            if handle.state == READY
        )
        while len(self._ready_units) < max(capacity, 1):
            request = self.queue.pop(now)
            if request is None:
                return
            request.mark_running()
            for index in range(request.spec.count):
                self._ready_units.append(_PoolUnit(request, index))

    def _dispatch(self, now: float) -> None:
        """Place ready units on the least-loaded healthy workers.

        Units carrying a ``sticky_key`` prefer their hash-chosen home
        worker while it is healthy and has capacity, so one stream's
        records land on one process (warm KV row, warm oracle memos).
        Affinity is best-effort: a busy or dead home worker falls back to
        least-loaded placement rather than stalling the queue.
        """
        while self._ready_units:
            ready_workers = sorted(
                (h for h in self._handles if h.state == READY),
                key=lambda h: len(h.inflight),
            )
            target = next(
                (
                    h
                    for h in ready_workers
                    if len(h.inflight) < self.max_inflight_per_worker
                ),
                None,
            )
            if target is None:
                return
            sticky = self._ready_units[0].request.spec.sticky_key
            if sticky is not None and self._handles:
                home = self._handles[
                    zlib.crc32(sticky.encode("utf-8")) % len(self._handles)
                ]
                if (
                    home.state == READY
                    and len(home.inflight) < self.max_inflight_per_worker
                ):
                    target = home
            unit = self._ready_units.popleft()
            request = unit.request
            if request.done:
                continue
            if request.cancel_requested:
                if request.fail(
                    RequestCancelled(f"request {request.id} cancelled")
                ):
                    self.cancelled += 1
                    self.slo.observe(
                        request.tenant, request.latency_ms, ok=False
                    )
                continue
            if request.expired(now):
                if request.fail(DeadlineExceeded(
                    f"request {request.id} expired while queued"
                )):
                    self.expired += 1
                    self.slo.observe(
                        request.tenant, request.latency_ms, ok=False
                    )
                continue
            if not self._send_job(target, unit, now):
                # The pipe broke mid-dispatch: the job never left, so put
                # it straight back (no retry consumed) and recycle the
                # worker before trying again.
                self._ready_units.appendleft(unit)
                self._on_worker_down(target, now, "pipe broke on dispatch")

    def _send_job(
        self, handle: WorkerHandle, unit: _PoolUnit, now: float
    ) -> bool:
        spec = unit.request.spec
        remaining_ms: Optional[float] = None
        if unit.request.deadline is not None:
            remaining_ms = max(0.0, (unit.request.deadline - now) * 1000.0)
        unit_id = next(self._unit_ids)
        rule_handle = unit.request.rule_handle
        job = {
            "kind": spec.kind,
            "coarse": dict(spec.coarse) if spec.coarse is not None else None,
            "context": dict(spec.context) if spec.context is not None else None,
            "count": 1,
            "seed": spec.seed,
            "priority": spec.priority,
            "timeout_ms": remaining_ms,
            "index_offset": unit.abs_index,
            # Ship the pinned content hash, not the client's name ref: hash
            # resolution survives promote *and* retire, so replays on a
            # restarted worker enforce exactly the admitted version.
            "rule_set": (
                rule_handle.hash_ref if rule_handle is not None else None
            ),
            # Affinity flows through to the worker's in-process scheduler
            # so the stream also pins a *lane* inside its home worker.
            "sticky_key": spec.sticky_key,
            # Trace context crosses the pipe as the correlation id plus the
            # replay attempt -- never ``trace_parent``, which is a span id
            # local to *this* process.  The worker's record span stays a
            # local root carrying the trace_id attr; merge-time re-parenting
            # (repro.obs.merge) stitches it under the router's request span.
            "trace_id": spec.trace_id,
            "attempt": unit.retries,
        }
        try:
            handle.conn.send(("job", unit_id, job))
        except (BrokenPipeError, OSError):
            return False
        handle.inflight[unit_id] = unit
        self.dispatched += 1
        return True

    def _scan_inflight(self, now: float) -> None:
        """Propagate deadlines and cancellation to dispatched records."""
        for handle in self._handles:
            if handle.conn is None or not handle.inflight:
                continue
            for unit_id, unit in list(handle.inflight.items()):
                request = unit.request
                overdue = request.expired(now)
                if not (request.done or request.cancel_requested or overdue):
                    continue
                if overdue and request.fail(DeadlineExceeded(
                    f"request {request.id} exceeded its deadline in flight"
                )):
                    self.expired += 1
                    self.slo.observe(
                        request.tenant, request.latency_ms, ok=False
                    )
                elif request.cancel_requested and request.fail(
                    RequestCancelled(f"request {request.id} cancelled")
                ):
                    self.cancelled += 1
                    self.slo.observe(
                        request.tenant, request.latency_ms, ok=False
                    )
                if not unit.cancel_sent:
                    unit.cancel_sent = True
                    try:
                        handle.conn.send(("cancel", unit_id))
                    except (BrokenPipeError, OSError):
                        pass  # the reaper will claim this worker shortly

    # -- message handling --------------------------------------------------------

    def _poll(self, timeout: float = 0.05) -> None:
        conns = {
            handle.conn: handle
            for handle in self._handles
            if handle.conn is not None and handle.state in (STARTING, READY)
        }
        if not conns:
            # Nothing to listen to (everything is backing off); nap briefly
            # so restart deadlines and queue scans still tick.
            time.sleep(min(timeout, 0.02))
            return
        try:
            readable = mp_connection.wait(list(conns), timeout=timeout)
        except OSError:  # pragma: no cover -- a conn died mid-wait
            readable = []
        now = time.monotonic()
        for conn in readable:
            handle = conns[conn]
            while handle.conn is conn:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_down(handle, now, "pipe closed")
                    break
                self._handle_message(handle, message, now)

    def _handle_message(
        self, handle: WorkerHandle, message: tuple, now: float
    ) -> None:
        handle.last_seen = now
        kind = message[0]
        if kind == "ready":
            handle.state = READY
            handle.pid = message[1]
        elif kind == "hb":
            stats = dict(message[1])
            # Pop the Sample rows before storing: handle.stats feeds the
            # JSON /metrics payload, which must stay plain builtins.
            handle.metric_samples = stats.pop("metrics", [])
            handle.stats = stats
        elif kind == "result":
            _, unit_id, wire = message
            unit = handle.inflight.pop(unit_id, None)
            if unit is None:
                return  # raced with a cancel/requeue; request already settled
            tenant_row = self._tenant_row(unit.request.tenant)
            self.records_completed += 1
            tenant_row["records"] += 1
            outcome = RecordOutcome(**wire)
            if unit.request.finish_unit(unit.index, outcome):
                self.completed += 1
                tenant_row["completed"] += 1
                self._latency_hist.observe(unit.request.latency_ms)
                self.slo.observe(
                    unit.request.tenant, unit.request.latency_ms, ok=True
                )
                with self._metrics_lock:
                    self._latencies.append(unit.request.latency_ms)
        elif kind == "err":
            _, unit_id, type_name, text = message
            unit = handle.inflight.pop(unit_id, None)
            if unit is None:
                return
            # Typed enforcement failures are deterministic -- replaying
            # them would fail identically -- so they settle the request
            # rather than consuming the crash-retry budget.
            error = resolve_error(type_name, text)
            if unit.request.fail(error):
                self.slo.observe(
                    unit.request.tenant, unit.request.latency_ms, ok=False
                )
                if isinstance(error, DeadlineExceeded):
                    self.expired += 1
                elif isinstance(error, RequestCancelled):
                    self.cancelled += 1
                else:
                    self.failed += 1
                    self._tenant_row(unit.request.tenant)["failed"] += 1
        elif kind == "bye":
            stats = dict(message[1])
            handle.metric_samples = stats.pop("metrics", [])
            handle.stats = stats
            handle.state = STOPPED
        else:  # pragma: no cover -- protocol drift guard
            logger.warning("worker %d: unknown message %r",
                           handle.worker_id, kind)

    # -- shutdown ----------------------------------------------------------------

    def _fail_everything(self, error: BaseException) -> None:
        for handle in self._handles:
            for unit in handle.inflight.values():
                unit.request.fail(error)
            handle.inflight.clear()
        for unit in self._ready_units:
            unit.request.fail(error)
        self._ready_units.clear()
        self.queue.close(drain=False)

    def _shutdown_workers(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            if handle.conn is not None and not handle.shutdown_sent:
                handle.shutdown_sent = True
                try:
                    handle.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self._handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover -- wedged child
                self._kill(handle)
            self._retire_stats(handle)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
                handle.conn = None
            if handle.state not in (BACKOFF, BROKEN):
                handle.state = STOPPED

    # -- observability -----------------------------------------------------------

    def _tenant_row(self, tenant: str) -> Dict[str, int]:
        return self._tenant_stats.setdefault(
            tenant, {"completed": 0, "failed": 0, "records": 0}
        )

    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant request/record counters (a copy; any thread)."""
        return {
            tenant: dict(row) for tenant, row in list(
                self._tenant_stats.items()
            )
        }

    def _healthy_workers(self) -> int:
        return sum(1 for handle in self._handles if handle.state == READY)

    def _aggregate_worker_stats(self) -> Dict[str, int]:
        totals = dict(self._retired_stats)
        for handle in self._handles:
            stats = handle.stats
            for key in _LM_STAT_KEYS:
                totals[key] += int(stats.get(key, 0))
        return totals

    def worker_states(self) -> List[Dict[str, Any]]:
        """Per-slot supervision view (for /healthz and the chaos harness)."""
        now = time.monotonic()
        states = []
        for handle in self._handles:
            states.append({
                "worker_id": handle.worker_id,
                "state": handle.state,
                "pid": handle.pid,
                "inflight": len(handle.inflight),
                "restarts": handle.restarts,
                "recent_failures": len(handle.failures),
                "heartbeat_age_s": round(max(0.0, now - handle.last_seen), 3)
                if handle.last_seen
                else None,
            })
        return states

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker pids in slot order (None for down slots)."""
        return [
            handle.pid if handle.alive else None for handle in self._handles
        ]

    def health(self) -> Dict[str, object]:
        """The ``GET /healthz`` payload; safe to call from any thread."""
        if self.queue.closed:
            status = "draining"
        elif self.breaker_open:
            status = "shedding"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": self.workers,
            "workers_healthy": self._healthy_workers(),
            "lanes": self.lanes,
            "lanes_busy": sum(len(h.inflight) for h in self._handles),
            "queue_depth": len(self.queue),
            "breaker_open": self.breaker_open,
            "worker_states": self.worker_states(),
        }

    def metrics(self) -> Dict[str, object]:
        """The ``GET /metrics`` payload; safe to call from any thread."""
        with self._metrics_lock:
            latencies = sorted(self._latencies)
        latency: Dict[str, object] = {"count": len(latencies)}
        if latencies:
            latency.update(
                p50=round(_percentile(latencies, 0.50), 3),
                p99=round(_percentile(latencies, 0.99), 3),
                mean=round(sum(latencies) / len(latencies), 3),
                max=round(latencies[-1], 3),
            )
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        lm = self._aggregate_worker_stats()
        queued = self.queue.tenant_depths()
        return {
            "uptime_s": round(uptime, 3),
            "mode": "worker_pool",
            "workers": self.workers,
            "workers_healthy": self._healthy_workers(),
            "lanes": self.lanes,
            "lanes_per_worker": self.lanes_per_worker,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.max_depth,
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled + self.queue.reaped_cancelled,
                "expired": self.expired + self.queue.reaped_expired,
                "rejected": self.queue.rejected,
                "shed": self.shed,
            },
            "records_completed": self.records_completed,
            "latency_ms": latency,
            "slo": self.slo.snapshot(),
            "tenants": {
                tenant: dict(row, queued=queued.get(tenant, 0))
                for tenant, row in sorted(self.tenant_stats().items())
            },
            "rule_sets": (
                self.rule_registry.describe()
                if self.rule_registry is not None
                else None
            ),
            "supervision": {
                "dispatched": self.dispatched,
                "worker_crashes": self.worker_crashes,
                "worker_restarts": self.worker_restarts,
                "units_retried": self.units_retried,
                "units_lost": self.units_lost,
                "breaker_trips": self.breaker_trips,
                "breaker_open": self.breaker_open,
            },
            "worker_lm": lm,
            "worker_states": self.worker_states(),
        }

    def prometheus_text(self) -> str:
        """The registry rendered as Prometheus exposition text."""
        return render(self.registry)

    def summary_line(self) -> str:
        """One machine-parseable ``key=value`` line for operator logs."""
        m = self.metrics()
        requests = m["requests"]
        latency = m["latency_ms"]
        supervision = m["supervision"]
        throughput = (
            self.completed / m["uptime_s"] if m["uptime_s"] > 0 else 0.0
        )
        pairs = [
            ("requests_completed", requests["completed"]),
            ("requests_failed", requests["failed"]),
            ("requests_rejected", requests["rejected"]),
            ("requests_shed", requests["shed"]),
            ("requests_expired", requests["expired"]),
            ("requests_cancelled", requests["cancelled"]),
            ("records_completed", m["records_completed"]),
            ("throughput_rps", f"{throughput:.2f}"),
            ("p50_ms", latency.get("p50", 0.0)),
            ("p99_ms", latency.get("p99", 0.0)),
            ("workers_healthy", m["workers_healthy"]),
            ("worker_crashes", supervision["worker_crashes"]),
            ("worker_restarts", supervision["worker_restarts"]),
            ("units_retried", supervision["units_retried"]),
            ("units_lost", supervision["units_lost"]),
        ]
        pairs.extend(self.slo.summary_pairs())
        return format_kv(pairs)
