"""``POST /v1/stream`` end to end: the serial streaming driver and the
HTTP front end (single scheduler or multi-process worker pool, fixed or
chunked request framing) must produce byte-identical emission lines --
including across a worker crash mid-stream.
"""

import threading
import time

import pytest

from repro.core import EnforcerConfig, JitEnforcer
from repro.data import build_dataset
from repro.lm import NgramLM
from repro.obs.merge import stream_trace_id
from repro.rules import RuleSet, domain_bound_rules, paper_rules
from repro.serve import (
    ContinuousBatchingScheduler,
    ServeClient,
    ServeClientError,
    ServingServer,
    WorkerPool,
    parse_stream_header,
)
from repro.stream import (
    EnforcerExecutor,
    StreamConfig,
    StreamSession,
    combine_rule_sets,
    mine_stream_rules,
    stream_bounds,
)
from repro.testing import FlakyStreamSource, kill_worker


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=3, num_test_racks=1, windows_per_rack=24, seed=3
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    temporal = mine_stream_rules(
        [rack.windows for rack in dataset.train_racks], dataset.config
    )
    small = RuleSet(name="http-temporal")
    for rule in list(temporal)[:24]:
        small.add(rule)
    rules = combine_rule_sets(paper_rules(dataset.config), small)
    events = [
        {"seq": i, "event_time": float(i), "coarse": window.coarse()}
        for i, window in enumerate(
            (dataset.test_windows() + dataset.train_windows())[:30]
        )
    ]
    return dataset, model, rules, events


def _enforcer(setting, seed=13):
    dataset, model, rules, _ = setting
    return JitEnforcer(
        model, rules, dataset.config, EnforcerConfig(seed=seed),
        fallback_rules=[domain_bound_rules(dataset.config)],
        bounds=stream_bounds(dataset.config),
    )


def _serial_lines(setting, events, seed=0, window=2, late_policy="patch"):
    dataset = setting[0]
    # The same deterministic correlation id /v1/stream mints for the
    # default stream id, so emission bytes (including the "trace" key)
    # stay comparable across drivers.
    session = StreamSession(
        StreamConfig(window=window, late_policy=late_policy, seed=seed),
        EnforcerExecutor(_enforcer(setting), seed=seed),
        telemetry_config=dataset.config,
        trace_id=stream_trace_id(f"stream-{seed}", seed),
    )
    emissions = []
    for event in events:
        emissions.extend(session.ingest(event))
    emissions.extend(session.close())
    return [e.encode() for e in emissions]


def _http_lines(client, events, chunked=False, **kwargs):
    import json

    return [
        json.dumps(reply, sort_keys=True, separators=(",", ":"))
        for reply in client.stream(events, chunked=chunked, **kwargs)
        if "error" not in reply
    ]


@pytest.fixture(scope="module")
def server(setting):
    dataset, model, rules, _ = setting
    scheduler = ContinuousBatchingScheduler(_enforcer(setting), lanes=2)
    with ServingServer(
        scheduler, port=0, telemetry_config=dataset.config
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    host, port = server.address
    return ServeClient(host, port, timeout=120)


class TestSchedulerStreamParity:
    def test_http_matches_serial_bytes(self, setting, client):
        events = setting[3]
        serial = _serial_lines(setting, events)
        http = _http_lines(client, events, seed=0, late_policy="patch")
        assert http == serial

    def test_chunked_request_framing_is_byte_invisible(self, setting, client):
        events = setting[3]
        fixed = _http_lines(client, events, seed=0, late_policy="patch")
        chunked = _http_lines(
            client, events, chunked=True, seed=0, late_policy="patch"
        )
        assert chunked == fixed

    def test_disordered_delivery_matches_serial(self, setting, client):
        events = list(FlakyStreamSource(setting[3], seed=2, late_rate=0.1))
        serial = _serial_lines(setting, events)
        http = _http_lines(client, events, seed=0, late_policy="patch")
        assert http == serial

    def test_emissions_arrive_in_seq_order_per_kind(self, setting, client):
        events = setting[3]
        replies = list(client.stream(events, seed=0))
        on_time = [r["seq"] for r in replies if r["kind"] == "record"]
        assert on_time == sorted(on_time)


class TestStreamErrors:
    def test_bad_header_is_a_400(self, setting, client):
        with pytest.raises(ServeClientError) as err:
            list(client.stream(setting[3], window=99))
        assert err.value.status == 400

    def test_unknown_rule_set_is_a_404(self, setting, client):
        with pytest.raises(ServeClientError) as err:
            list(client.stream(setting[3], rule_set="no-such-pack"))
        assert err.value.status == 404

    def test_bad_event_line_reports_and_continues(self, setting, client):
        events = [setting[3][0], {"seq": -4}, setting[3][1]]
        replies = list(client.stream(events, seed=0))
        errors = [r for r in replies if "error" in r]
        records = [r for r in replies if "error" not in r]
        assert len(errors) == 1
        assert [r["seq"] for r in records] == [0, 1]

    def test_header_parser_validates(self):
        config, rule_set, stream_id = parse_stream_header(
            {"seed": 4, "window": 3, "late_policy": "patch"}
        )
        assert config.seed == 4 and config.window == 3
        assert rule_set is None and stream_id == "stream-4"
        with pytest.raises(ValueError):
            parse_stream_header({"late_policy": "retry"})
        with pytest.raises(ValueError):
            parse_stream_header({"window": 0})
        with pytest.raises(ValueError):
            parse_stream_header({"lateness": -1})


class TestWorkerPoolStream:
    def test_pool_stream_matches_serial_bytes(self, setting):
        dataset, model, rules, events = setting
        serial = _serial_lines(setting, events)

        def factory():
            return _enforcer(setting)

        with WorkerPool(
            factory, workers=2, lanes_per_worker=2
        ) as pool, ServingServer(
            pool, port=0, telemetry_config=dataset.config
        ) as srv:
            host, port = srv.address
            pool_client = ServeClient(host, port, timeout=120)
            lines = _http_lines(
                pool_client, events, seed=0, late_policy="patch"
            )
        assert lines == serial

    def test_worker_kill_mid_stream_keeps_byte_parity(self, setting):
        dataset, model, rules, events = setting
        serial = _serial_lines(setting, events)

        def factory():
            return _enforcer(setting)

        with WorkerPool(
            factory, workers=2, lanes_per_worker=2, backoff_base=0.05
        ) as pool, ServingServer(
            pool, port=0, telemetry_config=dataset.config
        ) as srv:
            host, port = srv.address
            pool_client = ServeClient(host, port, timeout=240)

            killed = threading.Event()

            def assassin():
                time.sleep(0.3)  # well inside the 30-record stream
                pid = pool.worker_pids()[0]
                if pid is not None:
                    kill_worker(pid)
                killed.set()

            thread = threading.Thread(target=assassin)
            thread.start()
            try:
                lines = _http_lines(
                    pool_client, events, seed=0, late_policy="patch"
                )
            finally:
                thread.join()
            assert killed.is_set()
            assert pool.worker_crashes >= 1
            assert pool.units_lost == 0
        assert lines == serial
