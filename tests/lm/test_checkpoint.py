"""Model checkpoint tests."""

import numpy as np
import pytest

from repro.lm import (
    CharTokenizer,
    NgramLM,
    TransformerConfig,
    TransformerLM,
    load_ngram,
    load_transformer,
    save_ngram,
    save_transformer,
)


class TestTransformerCheckpoint:
    def test_roundtrip_identical_outputs(self, tmp_path):
        tokenizer = CharTokenizer()
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, max_len=24, d_model=16,
            n_heads=2, n_layers=1, seed=3,
        )
        model = TransformerLM(config, tokenizer)
        path = tmp_path / "model.npz"
        save_transformer(model, path)
        restored = load_transformer(path)
        prefix = tokenizer.encode("12 3")
        assert np.allclose(
            model.next_distribution(prefix), restored.next_distribution(prefix)
        )
        assert restored.config == config
        assert not restored.training

    def test_weights_actually_stored(self, tmp_path):
        tokenizer = CharTokenizer()
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, max_len=24, d_model=16,
            n_heads=2, n_layers=1, seed=3,
        )
        model = TransformerLM(config, tokenizer)
        path = tmp_path / "model.npz"
        save_transformer(model, path)
        # Mutate the original; the checkpoint must be unaffected.
        for param in model.parameters():
            param.data += 1.0
        restored = load_transformer(path)
        assert not np.allclose(
            model.token_embedding.weight.data,
            restored.token_embedding.weight.data,
        )


class TestNgramCheckpoint:
    def test_roundtrip_identical_distributions(self, tmp_path):
        corpus = [f"{a} {a+1}>{2*a + 1}\n" for a in range(25)]
        model = NgramLM(order=5).fit(corpus)
        path = tmp_path / "ngram.json"
        save_ngram(model, path)
        restored = load_ngram(path)
        assert restored.order == model.order
        for prefix_text in ["", "1", "12 ", "3 4>"]:
            prefix = model.tokenizer.encode(prefix_text)
            assert np.allclose(
                model.next_distribution(prefix),
                restored.next_distribution(prefix),
            )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_ngram(NgramLM(), tmp_path / "nope.json")

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_ngram(path)
