"""Synthesis experiment driver (Fig. 5).

Draws records from the GPT variants (vanilla / rejection / LeJIT) and the
five tailored generators, then reports per-field JSD against the real
coarse distribution and the rule-compliance audit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    CtganLike,
    EWganLike,
    NetShareLike,
    RealTabFormerLike,
    RejectionSampler,
    TvaeLike,
)
from ..core import EnforcementEngine, EnforcerConfig, JitEnforcer, RecordSampler
from ..data.telemetry import COARSE_FIELDS
from ..metrics import ViolationReport, audit, histogram_jsd
from .common import BenchContext

__all__ = ["SynthesisResult", "run_synthesis", "SYNTHESIS_METHODS"]

SYNTHESIS_METHODS = (
    "vanilla",
    "rejection",
    "lejit",
    "netshare",
    "e-wgan-gp",
    "ctgan",
    "tvae",
    "realtabformer",
)


@dataclass
class SynthesisResult:
    method: str
    rows: np.ndarray  # (n, len(COARSE_FIELDS))
    wall_time: float
    jsd_per_field: Dict[str, float] = field(default_factory=dict)
    violation_report: Optional[ViolationReport] = None

    def row(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "seconds": round(self.wall_time, 2),
        }
        for name, value in self.jsd_per_field.items():
            out[f"jsd_{name}"] = round(value, 4)
        out["jsd_mean"] = round(
            float(np.mean(list(self.jsd_per_field.values()))), 4
        )
        if self.violation_report is not None:
            out["rule_violation_%"] = round(
                100 * self.violation_report.rule_violation_rate, 2
            )
        return out


def _records_from_rows(rows: np.ndarray) -> List[Dict[str, int]]:
    return [
        {name: int(value) for name, value in zip(COARSE_FIELDS, row)}
        for row in rows
    ]


def run_synthesis(
    context: BenchContext,
    count: int,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    batch_size: int = 1,
) -> Dict[str, SynthesisResult]:
    """``batch_size > 1`` routes the LM-driven methods (vanilla / lejit)
    through the lock-step batched schedulers; scores are computed the same
    way either way."""
    methods = list(methods or SYNTHESIS_METHODS)
    cfg = context.dataset.config
    real_rows = context.coarse_rows
    rng = np.random.default_rng(seed)
    results: Dict[str, SynthesisResult] = {}

    for name in methods:
        start = time.perf_counter()
        if name == "vanilla":
            sampler = RecordSampler(context.model, cfg, seed=seed)
            if batch_size > 1:
                records = sampler.synthesize_raw_many(count, batch_size)
            else:
                records = [sampler.synthesize_raw() for _ in range(count)]
            rows = np.array(
                [[r[f] for f in COARSE_FIELDS] for r in records], dtype=np.int64
            )
        elif name == "rejection":
            rejection = RejectionSampler(
                context.model,
                context.synthesis_rules,
                cfg,
                max_attempts=500,
                seed=seed,
            )
            records = [rejection.synthesize() for _ in range(count)]
            rows = np.array(
                [[r[f] for f in COARSE_FIELDS] for r in records], dtype=np.int64
            )
        elif name == "lejit":
            enforcer = JitEnforcer(
                context.model,
                context.synthesis_rules,
                cfg,
                EnforcerConfig(seed=seed),
                fallback_rules=[context.domain_rules],
            )
            if batch_size > 1:
                engine = EnforcementEngine(enforcer, batch_size=batch_size)
                records = [o.values for o in engine.synthesize_many(count)]
            else:
                records = [enforcer.synthesize() for _ in range(count)]
            rows = np.array(
                [[r[f] for f in COARSE_FIELDS] for r in records], dtype=np.int64
            )
        else:
            generator = _make_generator(name)
            generator.fit(real_rows)
            rows = generator.sample(count, rng)
        elapsed = time.perf_counter() - start

        result = SynthesisResult(method=name, rows=rows, wall_time=elapsed)
        for index, field_name in enumerate(COARSE_FIELDS):
            result.jsd_per_field[field_name] = histogram_jsd(
                real_rows[:, index], rows[:, index]
            )
        result.violation_report = audit(
            _records_from_rows(rows), context.synthesis_rules
        )
        results[name] = result
    return results


def _make_generator(name: str):
    factories = {
        "netshare": NetShareLike,
        "e-wgan-gp": EWganLike,
        "ctgan": CtganLike,
        "tvae": TvaeLike,
        "realtabformer": RealTabFormerLike,
    }
    if name not in factories:
        raise ValueError(f"unknown synthesis method {name!r}")
    return factories[name]()


def format_table(results: Dict[str, SynthesisResult]) -> str:
    rows = [result.row() for result in results.values()]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(str(r.get(column, ""))) for r in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
