"""Fig. 4 (left): imputation accuracy -- EMD, p99, MAE, autocorrelation.

Paper's shape: LeJIT-manual improves on vanilla GPT-2 but trails Zoom2Net;
LeJIT with the full mined rules matches/surpasses Zoom2Net on EMD and p99;
rejection sampling *hurts* accuracy by disrespecting the learned
distribution.
"""

import pytest

from repro.bench import bench_n, run_imputation
from repro.bench.imputation import format_table

from conftest import write_result


@pytest.mark.benchmark(group="fig4-accuracy")
def test_fig4_imputation_accuracy(benchmark, context, results_dir):
    count = bench_n()

    def experiment():
        return run_imputation(context, count)

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [
        "Fig. 4 (left) - imputation accuracy vs ground truth",
        f"records per method: {count}",
        "",
        format_table(results),
    ]
    write_result(results_dir, "fig4_accuracy", "\n".join(lines))

    # Qualitative reproduction targets:
    lejit = results["lejit"].accuracy
    vanilla = results["vanilla"].accuracy
    # Full-rule LeJIT improves the generic model's point accuracy.
    assert lejit["mae"] <= vanilla["mae"] * 1.2
    # And tracks the true distribution at least as well on EMD.
    assert lejit["emd"] <= vanilla["emd"] * 1.6
