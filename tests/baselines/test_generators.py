"""Synthetic-data generator baseline tests."""

import numpy as np
import pytest

from repro.baselines import (
    CtganLike,
    EWganLike,
    NetShareLike,
    RealTabFormerLike,
    TvaeLike,
)
from repro.baselines.generators import _GanConfig
from repro.data import COARSE_FIELDS, build_dataset
from repro.metrics import histogram_jsd


@pytest.fixture(scope="module")
def rows():
    dataset = build_dataset(6, 1, 80, seed=6)
    return np.array(
        [[w.coarse()[name] for name in COARSE_FIELDS]
         for w in dataset.train_windows()],
        dtype=np.int64,
    )


FAST_GAN = _GanConfig(steps=150, seed=0)


def make_generators():
    return [
        NetShareLike(),
        EWganLike(FAST_GAN),
        CtganLike(FAST_GAN),
        TvaeLike(steps=200),
        RealTabFormerLike(),
    ]


class TestGeneratorContract:
    @pytest.mark.parametrize("generator", make_generators(),
                             ids=lambda g: g.name)
    def test_sample_shape_and_domain(self, rows, generator):
        generator.fit(rows)
        sample = generator.sample(50, np.random.default_rng(0))
        assert sample.shape == (50, rows.shape[1])
        assert sample.dtype == np.int64
        low = rows.min(axis=0)
        high = rows.max(axis=0)
        assert (sample >= low).all()
        assert (sample <= high).all()

    @pytest.mark.parametrize("generator", make_generators(),
                             ids=lambda g: g.name)
    def test_samples_vary(self, rows, generator):
        generator.fit(rows)
        sample = generator.sample(100, np.random.default_rng(1))
        assert len({tuple(row) for row in sample}) > 5


class TestFidelity:
    def test_netshare_marginals_close(self, rows):
        generator = NetShareLike().fit(rows)
        sample = generator.sample(500, np.random.default_rng(2))
        for index in range(rows.shape[1]):
            assert histogram_jsd(rows[:, index], sample[:, index]) < 0.1

    def test_netshare_preserves_correlation(self, rows):
        generator = NetShareLike().fit(rows)
        sample = generator.sample(1000, np.random.default_rng(3))
        real_corr = np.corrcoef(rows[:, 0], rows[:, 3])[0, 1]
        sample_corr = np.corrcoef(sample[:, 0], sample[:, 3])[0, 1]
        # total and egress are strongly correlated in the data.
        assert real_corr > 0.5
        assert abs(real_corr - sample_corr) < 0.3

    def test_realtabformer_fidelity_reasonable(self, rows):
        generator = RealTabFormerLike().fit(rows)
        sample = generator.sample(300, np.random.default_rng(4))
        mean_jsd = np.mean(
            [histogram_jsd(rows[:, i], sample[:, i]) for i in range(4)]
        )
        assert mean_jsd < 0.3

    def test_gan_trains_toward_data(self, rows):
        """After training, the GAN should do better than noise."""
        generator = CtganLike(FAST_GAN).fit(rows)
        sample = generator.sample(400, np.random.default_rng(5))
        rng = np.random.default_rng(6)
        noise = rng.integers(
            rows.min(axis=0), rows.max(axis=0) + 1, size=(400, 4)
        )
        gan_jsd = np.mean(
            [histogram_jsd(rows[:, i], sample[:, i]) for i in range(4)]
        )
        noise_jsd = np.mean(
            [histogram_jsd(rows[:, i], noise[:, i]) for i in range(4)]
        )
        assert gan_jsd < noise_jsd
