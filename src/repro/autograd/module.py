"""Minimal neural-network module system on top of the autograd engine.

Modules register parameters recursively (torch.nn style) so optimizers can
collect them with one call, and carry a train/eval flag for dropout.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = ["Module", "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential"]


class Module:
    """Base class: parameter registry + train/eval mode."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Tensor]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for module_name, module in self._modules.items():
            yield from module.named_parameters(f"{prefix}{module_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``x @ W + b`` with fan-in scaled init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.standard_normal((in_features, out_features)).astype(np.float32) * scale,
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features, dtype=np.float32), requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.02,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.weight = Tensor(
            rng.standard_normal((num_embeddings, dim)).astype(np.float32) * scale,
            requires_grad=True,
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight[np.asarray(ids)]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gain = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.shift = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((var + self.eps) ** -0.5)
        return normalized * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0 or not is_grad_enabled():
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for idx, layer in enumerate(layers):
            self._modules[str(idx)] = layer

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
