"""Rule-set composition tests (Section 5: compose rule sets on the fly)."""

import pytest

from repro.data import TelemetryConfig
from repro.rules import Rule, RuleSet, paper_rules, var, zoom2net_manual_rules
from repro.smt import Ge, Le


class TestUnion:
    def test_union_disjoint(self):
        a = RuleSet([Rule("a", Ge(var("x"), 0))], name="a")
        b = RuleSet([Rule("b", Le(var("x"), 5))], name="b")
        merged = a | b
        assert len(merged) == 2
        assert "a" in merged and "b" in merged
        assert merged.name == "a|b"

    def test_union_identical_rule_deduplicates(self):
        rule = Rule("shared", Ge(var("x"), 0))
        merged = RuleSet([rule]) | RuleSet([rule])
        assert len(merged) == 1

    def test_union_conflicting_definition_rejected(self):
        a = RuleSet([Rule("r", Ge(var("x"), 0))])
        b = RuleSet([Rule("r", Ge(var("x"), 1))])
        with pytest.raises(ValueError):
            a | b

    def test_union_semantics_is_conjunction(self):
        config = TelemetryConfig()
        merged = paper_rules(config) | zoom2net_manual_rules(config)
        assert len(merged) == len(paper_rules(config)) + len(
            zoom2net_manual_rules(config)
        )
        values = {"total": 10, "cong": 0, "retx": 0, "egr": 10,
                  "I0": 2, "I1": 2, "I2": 2, "I3": 2, "I4": 2}
        assert merged.compliant(values) == (
            paper_rules(config).compliant(values)
            and zoom2net_manual_rules(config).compliant(values)
        )

    def test_originals_unchanged(self):
        a = RuleSet([Rule("a", Ge(var("x"), 0))], name="a")
        b = RuleSet([Rule("b", Le(var("x"), 5))], name="b")
        _ = a | b
        assert len(a) == 1 and len(b) == 1


class TestFiltered:
    def test_filter_by_kind(self):
        rules = paper_rules()
        bounds_only = rules.filtered(lambda r: r.kind == "bound")
        assert len(bounds_only) == 5  # R1[0..4]

    def test_filter_preserves_rule_objects(self):
        rules = paper_rules()
        sums = rules.filtered(lambda r: r.kind == "sum")
        assert sums["R2"] is rules["R2"]

    def test_filter_to_empty(self):
        assert len(paper_rules().filtered(lambda r: False)) == 0
