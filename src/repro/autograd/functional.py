"""Loss functions and fused numerical kernels."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = ["cross_entropy", "log_softmax", "mse_loss", "binary_cross_entropy_with_logits"]


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax built from primitive ops."""
    shifted_data = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted_data).sum(axis=axis, keepdims=True))
    out_data = shifted_data - log_z

    def backward(grad: np.ndarray) -> None:
        softmax = np.exp(out_data)
        logits._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (logits,), backward)


def cross_entropy(
    logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None
) -> Tensor:
    """Mean token-level cross entropy; fused softmax+NLL backward.

    ``logits``: (..., vocab); ``targets``: integer array of shape (...).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
    else:
        keep = np.ones(flat_targets.shape, dtype=bool)
    count = max(1, int(keep.sum()))

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    safe_targets = np.where(keep, flat_targets, 0)
    picked = log_probs[np.arange(len(flat_targets)), safe_targets]
    loss_value = -(picked * keep).sum() / count

    def backward(grad: np.ndarray) -> None:
        softmax = np.exp(log_probs)
        softmax[np.arange(len(flat_targets)), safe_targets] -= 1.0
        softmax *= (keep / count)[:, None]
        logits._accumulate(float(grad) * softmax.reshape(logits.shape))

    return Tensor._make(np.float32(loss_value), (logits,), backward)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    diff = prediction - Tensor(np.asarray(target, dtype=np.float32))
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Stable BCE used by the GAN baselines."""
    targets = np.asarray(targets, dtype=np.float32)
    x = logits.data
    loss_value = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))

    def backward(grad: np.ndarray) -> None:
        # Numerically stable sigmoid (never exponentiates a positive value).
        sigmoid = np.where(
            x >= 0,
            1.0 / (1.0 + np.exp(-np.abs(x))),
            np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
        )
        logits._accumulate(grad * (sigmoid - targets))

    out = Tensor._make(loss_value.astype(np.float32), (logits,), backward)
    return out.mean()
