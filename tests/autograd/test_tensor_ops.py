"""Gradient checks for every autograd op, against central differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, no_grad

RNG = np.random.default_rng(0)
EPS = 1e-3
TOL = 5e-2


def numeric_gradient(fn, tensor):
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPS
        up = fn().item()
        flat[index] = original - EPS
        down = fn().item()
        flat[index] = original
        grad_flat[index] = (up - down) / (2 * EPS)
    return grad


def check(fn_builder, *shapes):
    tensors = [
        Tensor(RNG.standard_normal(shape).astype(np.float32) * 0.5, requires_grad=True)
        for shape in shapes
    ]

    def run():
        return fn_builder(*tensors)

    out = run()
    out.backward()
    for tensor in tensors:
        numeric = numeric_gradient(run, tensor)
        assert tensor.grad is not None
        assert np.abs(numeric - tensor.grad).max() < TOL, (
            fn_builder.__name__,
            np.abs(numeric - tensor.grad).max(),
        )


class TestElementwise:
    def test_add(self):
        check(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast(self):
        check(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_mul(self):
        check(lambda a, b: (a * b).sum(), (3, 4), (3, 4))

    def test_mul_broadcast_scalar_shape(self):
        check(lambda a, b: (a * b).sum(), (2, 3), (1,))

    def test_sub_neg(self):
        check(lambda a, b: (a - b + (-a)).sum(), (4,), (4,))

    def test_div(self):
        a = Tensor(RNG.random((3, 3)).astype(np.float32) + 1.0, requires_grad=True)
        b = Tensor(RNG.random((3, 3)).astype(np.float32) + 1.0, requires_grad=True)
        out = (a / b).sum()
        out.backward()
        assert np.allclose(a.grad, 1.0 / b.data, atol=1e-5)

    def test_pow(self):
        check(lambda a: ((a * a + 1.0) ** 1.5).sum(), (3, 3))

    def test_exp_log(self):
        a = Tensor(RNG.random((4,)).astype(np.float32) + 0.5, requires_grad=True)
        out = (a.log() + a.exp()).sum()
        out.backward()
        expected = 1.0 / a.data + np.exp(a.data)
        assert np.allclose(a.grad, expected, rtol=1e-4)

    def test_tanh_sigmoid_relu_gelu(self):
        check(lambda a: a.tanh().sum(), (3, 3))
        check(lambda a: a.sigmoid().sum(), (3, 3))
        check(lambda a: a.gelu().sum(), (3, 3))
        # relu at random points (kink measure zero).
        check(lambda a: (a.relu() * a).sum(), (3, 3))

    def test_sqrt(self):
        a = Tensor(RNG.random((4,)).astype(np.float32) + 1.0, requires_grad=True)
        a.sqrt().sum().backward()
        assert np.allclose(a.grad, 0.5 / np.sqrt(a.data), rtol=1e-4)


class TestReductionsAndShape:
    def test_sum_axis(self):
        check(lambda a: (a.sum(axis=0) * a.sum(axis=0)).sum(), (3, 4))

    def test_sum_keepdims(self):
        check(lambda a: (a - a.sum(axis=-1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        check(lambda a: ((a - a.mean(axis=-1, keepdims=True)) ** 2.0).mean(), (3, 4))

    def test_max(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 7.0]], dtype=np.float32),
                   requires_grad=True)
        a.max(axis=1).sum().backward()
        # Ties split mass evenly.
        expected = np.array([[0, 1, 0], [0.5, 0, 0.5]], dtype=np.float32)
        assert np.allclose(a.grad, expected)

    def test_reshape_transpose(self):
        check(lambda a: (a.transpose(1, 0).reshape(12) ** 2.0).sum(), (3, 4))

    def test_transpose_multi_axis(self):
        check(lambda a: (a.transpose(2, 0, 1) * 2.0).sum(), (2, 3, 4))

    def test_getitem_int_array(self):
        index = np.array([0, 2, 2])
        check(lambda a: (a[index] * a[index]).sum(), (4, 3))

    def test_getitem_slice(self):
        check(lambda a: (a[:, 1:] ** 2.0).sum(), (3, 4))

    def test_concatenate(self):
        check(lambda a, b: (concatenate([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2))


class TestMatmulAndSoftmax:
    def test_matmul(self):
        check(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_batched_matmul(self):
        check(lambda a, b: (a @ b).sum(), (2, 3, 4), (2, 4, 2))

    def test_matmul_broadcast(self):
        check(lambda a, b: (a @ b).sum(), (2, 3, 4), (4, 2))

    def test_softmax(self):
        weight = Tensor(RNG.standard_normal((3, 5)).astype(np.float32))
        check(lambda a: (a.softmax(-1) * weight).sum(), (3, 5))

    def test_softmax_rows_sum_to_one(self):
        a = Tensor(RNG.standard_normal((4, 7)).astype(np.float32))
        out = a.softmax(-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = a.masked_fill(mask, -5.0)
        assert out.data[0, 0] == -5.0 and out.data[0, 1] == 1.0
        out.sum().backward()
        assert a.grad[0, 0] == 0.0 and a.grad[0, 1] == 1.0


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        out = a * a  # d(a^2)/da = 2a = 4
        out.backward()
        assert np.allclose(a.grad, [4.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            out = (a * 2).sum()
        assert not out.requires_grad

    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_detached_raises(self):
        a = Tensor(np.ones(2, dtype=np.float32))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_detach(self):
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        assert not a.detach().requires_grad

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        b = a * 2
        c = a * 3
        (b * c).sum().backward()  # d(6a^2)/da = 12a = 36
        assert np.allclose(a.grad, [36.0])
