"""Feasible-region oracles: what values may the current variable take?

This is where the SMT solver "natively joins the inference process".  An
oracle tracks the record's rules plus the values generated so far and
answers two questions per variable:

* :meth:`feasible_set` -- a sound *over-approximation* of the values the
  variable can take such that the whole record can still be completed
  (the paper's dynamic partial instantiation + lookahead);
* :meth:`confirm` -- the exact check that a concrete value admits a
  rule-compliant completion.

Three implementations realize the solver-tier ablation of DESIGN.md:

* :class:`SmtOracle` -- both answers from the DPLL(T) solver (exact ranges);
* :class:`IntervalOracle` -- both from bounds propagation (fast, sound for
  pruning, but incomplete: it can let dead ends through);
* :class:`HybridOracle` (default) -- interval ranges for cheap per-digit
  masking, solver confirmation at variable boundaries.  This is the
  configuration that guarantees compliance at tractable cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import InfeasibleRecord, SolverBudgetExceeded
from ..rules.dsl import RuleSet
from ..smt import (
    SAT,
    UNSAT,
    And,
    Atom,
    BudgetMeter,
    Eq,
    Formula,
    IntVar,
    Le,
    LinCon,
    LinExpr,
    Or,
    Solver,
    propagate,
)
from ..smt.intervals import Interval
from ..smt.simplify import simplify, substitute, to_nnf
from ..smt.terms import FALSE, TRUE, BoolConst, Implies, Iff, Not
from .transition import FeasibleSet

__all__ = [
    "FeasibilityOracle",
    "SmtOracle",
    "IntervalOracle",
    "HybridOracle",
    "InfeasibleRecordError",
]

Bounds = Mapping[str, Tuple[int, int]]


def residualize(formula: Formula, fixed: Mapping[str, int]) -> Formula:
    """Substitute fixed values, push negations to atoms, and fold constants.

    The result is in NNF, so conjunctive information can be harvested by
    :func:`_collect_lincons` and asserted compactly by the solver.
    """
    return simplify(to_nnf(substitute(formula, fixed)))


class InfeasibleRecordError(InfeasibleRecord):
    """The rules admit no completion for the current record prefix."""


class FeasibilityOracle:
    """Common interface; concrete oracles override the query methods.

    ``meter`` (optional) is a shared :class:`~repro.smt.BudgetMeter`: every
    solver the oracle spins up charges its deterministic work (conflicts,
    pivots, theory rounds, ...) against the meter's budget.  Budget
    exhaustion surfaces as :class:`~repro.errors.SolverBudgetExceeded` --
    distinct from :class:`InfeasibleRecordError`, which is a genuine UNSAT.
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
    ):
        self.rules = rules
        self.bounds = dict(bounds)
        self.fixed: Dict[str, int] = {}
        self.meter = meter

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        """Start a fresh record with the given already-known variables."""
        raise NotImplementedError

    def feasible_set(self, variable: str) -> FeasibleSet:
        raise NotImplementedError

    def confirm(self, variable: str, value: int) -> bool:
        raise NotImplementedError

    def confirm_status(self, variable: str, value: int) -> str:
        """Tri-state confirm: ``sat`` | ``unsat`` | ``unknown``.

        The default derives from :meth:`confirm`; solver-backed oracles
        override it to surface UNKNOWN (budget exhaustion) distinctly so
        the enforcer can step down its degradation ladder instead of
        misreading resource exhaustion as a refuted value.
        """
        return SAT if self.confirm(variable, value) else UNSAT

    def fix(self, variable: str, value: int) -> None:
        raise NotImplementedError

    def _clip(self, variable: str, feasible: FeasibleSet) -> FeasibleSet:
        low, high = self.bounds[variable]
        return feasible.intersect_interval(low, high)


class SmtOracle(FeasibilityOracle):
    """Exact feasibility via the DPLL(T) solver.

    The record's known values are *substituted into the rules first*, so the
    solver only ever sees the residual formulas over still-free variables --
    typically a handful of atoms instead of hundreds.  This is the paper's
    "dynamic partial instantiation": fixing values deactivates rules (their
    residual simplifies to TRUE) and specializes the rest.

    A fresh solver is built per record (cheap at residual size); domain
    bounds of the free variables are always asserted so every ``check`` also
    proves a completion exists (lookahead).
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
    ):
        super().__init__(rules, bounds, meter)
        self._solver: Optional[Solver] = None
        self._record_depth = 0

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._solver = Solver(meter=self.meter)
        self._record_depth = 0
        disjunctive: List[Formula] = []
        conjunctive: List[LinCon] = []
        for formula in self.rules.formulas():
            residual = residualize(formula, self.fixed)
            if residual == TRUE:
                continue
            if residual == FALSE:
                raise InfeasibleRecordError(
                    f"rule refuted by fixed values {self.fixed}"
                )
            pure = _pure_conjunctive(residual)
            if pure is None:
                disjunctive.append(residual)
            else:
                conjunctive.extend(pure)
        # Fold the (typically hundreds of) conjunctive residual constraints
        # down to the strongest bound per linear form -- the solver then sees
        # tens of atoms instead of hundreds, which matters per token.
        folded_bounds, folded_other = _fold_lincons(conjunctive, self.bounds)
        for name, (low, high) in folded_bounds.items():
            if name in self.fixed:
                if not low <= self.fixed[name] <= high:
                    raise InfeasibleRecordError(
                        f"fixed {name}={self.fixed[name]} outside [{low},{high}]"
                    )
                continue
            if low > high:
                raise InfeasibleRecordError(f"empty folded domain for {name}")
            self._solver.add(Le(low, IntVar(name)))
            self._solver.add(Le(IntVar(name), high))
        for formula in folded_other:
            self._solver.add(formula)
        for formula in disjunctive:
            self._solver.add(formula)
        result = self._solver.check()
        if result.is_unknown:
            raise SolverBudgetExceeded(
                "budget exhausted while opening record",
                resource=self._solver.meter.last_exhausted,
            )
        if not result.satisfiable:
            raise InfeasibleRecordError(
                f"rules are unsatisfiable given fixed values {self.fixed}"
            )

    def feasible_set(self, variable: str) -> FeasibleSet:
        interval = self._solver.feasible_interval(IntVar(variable))
        if interval is None:
            return FeasibleSet.empty()
        low, high = interval
        if low is None or high is None:  # bounds always close the domain
            low_default, high_default = self.bounds[variable]
            low = low_default if low is None else low
            high = high_default if high is None else high
        return self._clip(variable, FeasibleSet.from_interval(low, high))

    def confirm(self, variable: str, value: int) -> bool:
        return self.confirm_status(variable, value) == SAT

    def confirm_status(self, variable: str, value: int) -> str:
        self._solver.push()
        try:
            self._solver.add(Eq(IntVar(variable), value))
            return self._solver.check().status
        finally:
            self._solver.pop()

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        self._solver.push()
        self._record_depth += 1
        self._solver.add(Eq(IntVar(variable), value))

    def any_model(self) -> Dict[str, int]:
        """A full rule-compliant completion of the current prefix."""
        result = self._solver.check()
        if result.is_unknown:
            raise SolverBudgetExceeded(
                "budget exhausted while extracting a model",
                resource=self._solver.meter.last_exhausted,
            )
        if not result.satisfiable:
            raise InfeasibleRecordError("no completion exists")
        model = dict(result.model or {})
        for name, (low, _) in self.bounds.items():
            model.setdefault(name, max(low, 0))
        return model


def _pure_conjunctive(formula: Formula) -> Optional[List[LinCon]]:
    """The formula as a list of linear constraints, or None if it has any
    genuinely disjunctive structure."""
    out: List[LinCon] = []
    ok = _collect_pure(formula, out)
    return out if ok else None


def _collect_pure(node: Formula, out: List[LinCon]) -> bool:
    if isinstance(node, Atom):
        out.append(LinCon.make(node.expr.coeffs, node.expr.const, node.op))
        return True
    if isinstance(node, And):
        return all(_collect_pure(arg, out) for arg in node.args)
    if isinstance(node, Not) and isinstance(node.arg, Atom) and node.arg.op == "==":
        atom = node.arg
        out.append(LinCon.make(atom.expr.coeffs, atom.expr.const, "!="))
        return True
    return False


def _fold_lincons(
    constraints: List[LinCon], base_bounds: Bounds
) -> Tuple[Dict[str, Tuple[int, int]], List[Formula]]:
    """Tighten per-variable bounds and keep only the strongest constraint
    per multi-variable linear form.  Returns (bounds, leftover formulas)."""
    bounds: Dict[str, Tuple[int, int]] = dict(base_bounds)
    strongest: Dict[Tuple, LinCon] = {}
    other: List[Formula] = []
    for con in constraints:
        reduced = con.normalized()
        if reduced is None:
            continue
        if reduced.is_ground():
            if not reduced.ground_truth():
                # Represent as an always-false formula; the caller's check()
                # will report infeasibility with this asserted.
                other.append(FALSE)
            continue
        items = reduced.items
        if len(items) == 1 and reduced.op == "<=":
            name, coeff = items[0]
            low, high = bounds.get(name, (None, None))
            if coeff > 0:  # coeff*v <= -const
                limit = (-reduced.const) // coeff
                high = limit if high is None else min(high, limit)
            else:  # coeff < 0:  v >= ceil(const / -coeff)
                limit = -((-reduced.const) // (-coeff))
                low = limit if low is None else max(low, limit)
            bounds[name] = (low, high)
            continue
        if reduced.op == "<=":
            key = (items, "<=")
            seen = strongest.get(key)
            if seen is None or reduced.const > seen.const:
                strongest[key] = reduced
            continue
        # Equalities and disequalities pass through unfolded.
        expr = LinExpr(dict(items), reduced.const)
        if reduced.op == "==":
            other.append(Atom(expr, "=="))
        else:
            other.append(Not(Atom(expr, "==")))
    for con in strongest.values():
        other.append(Atom(LinExpr(dict(con.items), con.const), "<="))
    # Close any half-open bounds back to the base domain.
    closed: Dict[str, Tuple[int, int]] = {}
    for name, (low, high) in bounds.items():
        base_low, base_high = base_bounds.get(name, (0, 0))
        closed[name] = (
            base_low if low is None else low,
            base_high if high is None else high,
        )
    return closed, other


def _conjunctive_lincons(
    formula: Formula, fixed: Mapping[str, int]
) -> List[LinCon]:
    """Extract linear constraints *implied* by the formula given ``fixed``.

    Sound under-approximation of the formula's strength: every returned
    constraint holds in all models extending ``fixed``.  Disjunctions
    contribute only once all but one branch is ground-false.
    """
    grounded = residualize(formula, fixed)
    out: List[LinCon] = []
    _collect_lincons(grounded, out)
    return out


def _collect_lincons(node: Formula, out: List[LinCon]) -> None:
    if isinstance(node, BoolConst):
        if not node.value:
            out.append(LinCon.make({}, 1, "<="))  # ground false marker
        return
    if isinstance(node, Atom):
        out.append(LinCon.make(node.expr.coeffs, node.expr.const, node.op))
        return
    if isinstance(node, And):
        for arg in node.args:
            _collect_lincons(arg, out)
        return
    if isinstance(node, Or):
        live = [arg for arg in node.args if arg != FALSE]
        if not live:
            out.append(LinCon.make({}, 1, "<="))
        elif len(live) == 1:
            _collect_lincons(live[0], out)
        return  # 2+ live branches: nothing conjunctively implied
    if isinstance(node, Not):
        if isinstance(node.arg, Atom) and node.arg.op == "==":
            atom = node.arg
            out.append(LinCon.make(atom.expr.coeffs, atom.expr.const, "!="))
        return
    if isinstance(node, (Implies, Iff)):
        # simplify() rewrites these away; reaching here means no information.
        return


class IntervalOracle(FeasibilityOracle):
    """Bounds-propagation tier: fast, sound for pruning, incomplete.

    State is refolded after every ``fix``: single-variable residual
    constraints collapse into a per-variable *box*, multi-variable ones keep
    only the strongest bound per linear form, and disjunctive residuals are
    held back symbolically (they only inform propagation once all but one
    branch dies).  Queries then run propagation over this compact state.
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
    ):
        super().__init__(rules, bounds, meter)
        self._box: Dict[str, Tuple[int, int]] = dict(bounds)
        self._multi_cons: List[LinCon] = []
        self._disjunctive: List[Formula] = []
        self._refuted = False
        self._domain_cache: Optional[Dict[str, Interval]] = None

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._refuted = False
        self._refold(self.rules.formulas(), self.fixed)
        if self._refuted or self._propagate(None, None) is None:
            raise InfeasibleRecordError(
                f"bounds propagation refutes fixed values {self.fixed}"
            )

    def _refold(self, formulas: Iterable[Formula], fixed: Mapping[str, int]) -> None:
        """Residualize ``formulas`` against ``fixed`` and fold the result."""
        self._domain_cache = None
        conjunctive: List[LinCon] = []
        disjunctive: List[Formula] = []
        for formula in formulas:
            reduced = residualize(formula, fixed)
            if reduced == TRUE:
                continue
            if reduced == FALSE:
                self._refuted = True
                return
            pure = _pure_conjunctive(reduced)
            if pure is None:
                disjunctive.append(reduced)
                # A disjunction still conjunctively implies its collapsed
                # parts when all but one branch is dead.
                _collect_lincons(reduced, conjunctive)
            else:
                conjunctive.extend(pure)
        box, other_formulas = _fold_lincons(conjunctive, self.bounds)
        for name, (low, high) in box.items():
            if name in fixed and not low <= fixed[name] <= high:
                self._refuted = True
                return
            if low > high:
                self._refuted = True
                return
        self._box = box
        multi: List[LinCon] = []
        for formula in other_formulas:
            if formula == FALSE:
                self._refuted = True
                return
            _collect_lincons(formula, multi)
        self._multi_cons = multi
        self._disjunctive = disjunctive

    def _initial_domain(self) -> Dict[str, Interval]:
        initial = {
            name: Interval(low, high) for name, (low, high) in self._box.items()
        }
        for name, value in self.fixed.items():
            initial[name] = Interval(value, value)
        return initial

    def _propagate(self, extra_var: Optional[str], extra_value: Optional[int]):
        """Domain after propagation, optionally pinning one trial value."""
        if self._refuted:
            return None
        if extra_var is None and self._domain_cache is not None:
            return self._domain_cache
        constraints = list(self._multi_cons)
        initial = self._initial_domain()
        if extra_var is not None:
            pin = initial.get(extra_var, Interval(extra_value, extra_value))
            if not pin.contains(extra_value):
                return None
            initial[extra_var] = Interval(extra_value, extra_value)
            # The trial value may collapse disjunctions; harvest those.
            trial = {extra_var: extra_value}
            for formula in self._disjunctive:
                reduced = residualize(formula, trial)
                if reduced == TRUE:
                    continue
                if reduced == FALSE:
                    return None
                _collect_lincons(reduced, constraints)
        result = propagate(constraints, initial)
        domain = result.domain if result.feasible else None
        if extra_var is None:
            self._domain_cache = domain
        return domain

    def feasible_set(self, variable: str) -> FeasibleSet:
        domain = self._propagate(None, None)
        if domain is None:
            return FeasibleSet.empty()
        interval = domain.get(variable)
        low_default, high_default = self._box.get(
            variable, self.bounds[variable]
        )
        if interval is None:
            return FeasibleSet.from_interval(low_default, high_default)
        low = low_default if interval.lower is None else interval.lower
        high = high_default if interval.upper is None else interval.upper
        return self._clip(variable, FeasibleSet.from_interval(low, high))

    def confirm(self, variable: str, value: int) -> bool:
        return self._propagate(variable, value) is not None

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        if self._refuted:
            return
        # Re-residualize the compact state (not the original rules): the
        # box becomes formulas implicitly via bounds, multi-var constraints
        # specialize, and disjunctions may collapse.
        formulas: List[Formula] = []
        for con in self._multi_cons:
            expr = LinExpr(dict(con.items), con.const)
            if con.op == "<=":
                formulas.append(Atom(expr, "<="))
            elif con.op == "==":
                formulas.append(Atom(expr, "=="))
            else:
                formulas.append(Not(Atom(expr, "==")))
        formulas.extend(self._disjunctive)
        previous_box = self._box
        self._refold(formulas, {variable: value})
        # Folding against self.bounds loses earlier box tightenings; merge.
        merged: Dict[str, Tuple[int, int]] = {}
        for name, (low, high) in self._box.items():
            prev_low, prev_high = previous_box.get(name, (low, high))
            merged[name] = (max(low, prev_low), min(high, prev_high))
            if merged[name][0] > merged[name][1] and name not in self.fixed:
                self._refuted = True
        self._box = merged


class HybridOracle(FeasibilityOracle):
    """Interval masks + SMT confirmation: LeJIT's default configuration."""

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
    ):
        super().__init__(rules, bounds, meter)
        self.interval = IntervalOracle(rules, bounds, meter)
        self.smt = SmtOracle(rules, bounds, meter)

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self.interval.begin_record(self.fixed)  # raises on interval refutation
        self.smt.begin_record(self.fixed)  # raises on exact refutation

    def feasible_set(self, variable: str) -> FeasibleSet:
        return self.interval.feasible_set(variable)

    def confirm(self, variable: str, value: int) -> bool:
        return self.confirm_status(variable, value) == SAT

    def confirm_status(self, variable: str, value: int) -> str:
        # Cheap refutation first, exact check second.
        if not self.interval.confirm(variable, value):
            return UNSAT
        return self.smt.confirm_status(variable, value)

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        self.interval.fix(variable, value)
        self.smt.fix(variable, value)

    def any_model(self) -> Dict[str, int]:
        return self.smt.any_model()
