"""Bursty datacenter traffic generation.

Synthetic stand-in for the Meta datacenter traces [14] used by the paper:
fine-grained (per-millisecond) ingress byte counts per rack, produced by a
Markov-modulated ON/OFF model with heavy-tailed burst sizes -- the
microburst structure the IMC'22 study reports (short, intense bursts over a
light baseline, correlated with ECN marking and buffer contention).

Every rack runs the same structural model with rack-specific parameters
drawn from a meta-distribution, mirroring the per-rack heterogeneity that
makes the imputation task non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


import numpy as np

__all__ = [
    "WorkloadParams",
    "RackWorkload",
    "sample_rack_params",
    "StreamParams",
    "TelemetryStream",
]


@dataclass(frozen=True)
class WorkloadParams:
    """Parameters of one rack's traffic process (units: bytes per tick,
    scaled down so values stay in LM-friendly ranges)."""

    bandwidth: int = 60  # link capacity per tick (the paper's BW)
    base_load_mean: float = 6.0  # mean background ingress per tick
    burst_rate: float = 0.08  # burst arrivals per tick (ON/OFF switch)
    burst_duration_mean: float = 2.5  # mean ON duration in ticks
    burst_intensity: float = 0.75  # burst load as a fraction of bandwidth
    pareto_shape: float = 1.6  # heavy tail of burst sizes
    seed: int = 0


def sample_rack_params(
    rng: np.random.Generator, bandwidth: int = 60, seed: int = 0
) -> WorkloadParams:
    """Draw one rack's parameters from the fleet meta-distribution."""
    return WorkloadParams(
        bandwidth=bandwidth,
        base_load_mean=float(rng.uniform(3.0, 9.0)),
        burst_rate=float(rng.uniform(0.04, 0.14)),
        burst_duration_mean=float(rng.uniform(1.5, 4.0)),
        burst_intensity=float(rng.uniform(0.6, 0.95)),
        pareto_shape=float(rng.uniform(1.3, 2.2)),
        seed=seed,
    )


class RackWorkload:
    """Generates the fine-grained ingress series for one rack."""

    def __init__(self, params: WorkloadParams):
        self.params = params
        self._rng = np.random.default_rng(params.seed)

    def generate(self, num_ticks: int) -> np.ndarray:
        """Fine-grained ingress bytes per tick, each in [0, bandwidth]."""
        p = self.params
        rng = self._rng
        ingress = np.zeros(num_ticks, dtype=np.int64)

        # Background load: Poisson around the base mean.
        ingress += rng.poisson(p.base_load_mean, size=num_ticks)

        # Bursts: ON periods arrive as a Bernoulli process; each ON period
        # has geometric duration and a Pareto-scaled peak intensity.
        tick = 0
        while tick < num_ticks:
            if rng.random() < p.burst_rate:
                duration = 1 + rng.geometric(1.0 / p.burst_duration_mean)
                scale = rng.pareto(p.pareto_shape) + 1.0
                peak = min(1.0, p.burst_intensity * min(scale / 2.0, 1.5))
                for offset in range(duration):
                    if tick + offset >= num_ticks:
                        break
                    # Triangular ramp within the burst.
                    position = offset / max(1, duration - 1) if duration > 1 else 0.5
                    envelope = 1.0 - abs(2.0 * position - 1.0) * 0.5
                    load = peak * envelope * p.bandwidth
                    ingress[tick + offset] += int(rng.normal(load, load * 0.08))
                tick += duration
            else:
                tick += 1

        np.clip(ingress, 0, p.bandwidth, out=ingress)
        return ingress


@dataclass(frozen=True)
class StreamParams:
    """Parameters of one replayable telemetry stream.

    Event times follow a two-state MMPP: exponential inter-arrivals whose
    mean switches between a calm and a burst regime, the regime itself
    flipping with the configured per-event probabilities -- the arrival
    burstiness the paper's operator-pipeline framing assumes.  Delivery
    (arrival) times add exponential transport jitter, plus a long extra
    delay for a seeded fraction of events, which is what produces the
    out-of-order and late records a stream driver must survive.
    """

    seed: int = 0
    bandwidth: int = 60
    mean_interarrival: float = 1.0  # calm-regime mean gap (event time)
    burst_interarrival: float = 0.2  # burst-regime mean gap
    switch_on: float = 0.08  # P(calm -> burst) per event
    switch_off: float = 0.35  # P(burst -> calm) per event
    jitter: float = 0.25  # mean transport delay (exponential)
    late_fraction: float = 0.05  # fraction held back far past the watermark
    late_delay: float = 6.0  # extra delivery delay of a late event

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0 or self.burst_interarrival <= 0:
            raise ValueError("inter-arrival means must be > 0")
        if not 0 <= self.late_fraction <= 1:
            raise ValueError("late_fraction must be in [0, 1]")
        if self.jitter < 0 or self.late_delay < 0:
            raise ValueError("jitter and late_delay must be >= 0")


class TelemetryStream:
    """Seed-deterministic coarse event stream for one telemetry source.

    The *content* (coarse counters per seq) comes from one
    :class:`RackWorkload` fine series coarsened through the standard queue
    model, so streamed windows are distributed like dataset windows.  The
    *delivery schedule* -- MMPP event times, jitter, a late tail -- is
    drawn from an independent generator, so the same seed always produces
    the same events in the same (shuffled) delivery order: replaying a
    stream is just re-running this generator.
    """

    def __init__(self, params: StreamParams, config=None):
        from .telemetry import TelemetryConfig, coarsen

        self.params = params
        self.config = config or TelemetryConfig(bandwidth=params.bandwidth)
        self._coarsen = coarsen

    def events(self, count: int) -> List[Dict[str, object]]:
        """``count`` events in delivery order, each a wire-format dict.

        Each event carries ``seq`` (content order), ``event_time`` (source
        timestamp), ``arrival_time`` (delivery timestamp; the sort key),
        and the ``coarse`` counters.  Floats are rounded to microseconds
        so the JSONL encoding is byte-stable.
        """
        p = self.params
        seeds = np.random.SeedSequence(p.seed).spawn(2)
        content_rng = np.random.default_rng(seeds[0])
        sched_rng = np.random.default_rng(seeds[1])

        rack = RackWorkload(
            sample_rack_params(content_rng, bandwidth=p.bandwidth, seed=p.seed)
        )
        fine = rack.generate(count * self.config.window)
        windows, _ = self._coarsen(fine, self.config, content_rng)

        events: List[Dict[str, object]] = []
        clock = 0.0
        bursting = False
        for seq in range(count):
            if bursting:
                if sched_rng.random() < p.switch_off:
                    bursting = False
            elif sched_rng.random() < p.switch_on:
                bursting = True
            mean = p.burst_interarrival if bursting else p.mean_interarrival
            clock += float(sched_rng.exponential(mean))
            delay = float(sched_rng.exponential(p.jitter))
            if sched_rng.random() < p.late_fraction:
                delay += p.late_delay * (1.0 + float(sched_rng.exponential(0.5)))
            events.append(
                {
                    "seq": seq,
                    "event_time": round(clock, 6),
                    "arrival_time": round(clock + delay, 6),
                    "coarse": windows[seq].coarse(),
                }
            )
        events.sort(key=lambda e: (e["arrival_time"], e["seq"]))
        return events
