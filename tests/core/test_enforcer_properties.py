"""Property-based tests of the enforcement guarantee.

The central invariant: for ANY feasible coarse prompt and ANY sampling
seed, the guided record satisfies every enforced rule -- on both exact
oracle tiers, with and without the optimistic fast path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EnforcerConfig, InfeasibleRecordError, JitEnforcer
from repro.data import TelemetryConfig, build_dataset, fine_field
from repro.lm import NgramLM
from repro.rules import paper_rules


CONFIG = TelemetryConfig()
RULES = paper_rules(CONFIG)


@pytest.fixture(scope="module")
def model():
    dataset = build_dataset(4, 1, 60, seed=21)
    return NgramLM(order=6).fit(dataset.train_texts())


# Feasible-by-construction prompts: pick fine values first, derive coarse.
@st.composite
def feasible_prompts(draw):
    fine = [draw(st.integers(0, CONFIG.bandwidth)) for _ in range(CONFIG.window)]
    congested = draw(st.booleans())
    if congested and max(fine) < CONFIG.bandwidth // 2:
        index = draw(st.integers(0, CONFIG.window - 1))
        fine[index] = draw(st.integers(CONFIG.bandwidth // 2, CONFIG.bandwidth))
    cong = draw(st.integers(1, CONFIG.window)) if congested else 0
    retx = draw(st.integers(0, cong)) if cong else 0
    egr = draw(st.integers(0, CONFIG.max_egress()))
    return {"total": sum(fine), "cong": cong, "retx": retx, "egr": egr}


@given(feasible_prompts(), st.integers(0, 2**31 - 1), st.booleans())
@settings(max_examples=40, deadline=None)
def test_guided_imputation_always_complies(model, prompt, seed, optimistic):
    enforcer = JitEnforcer(
        model, RULES, CONFIG,
        EnforcerConfig(seed=seed, optimistic=optimistic),
    )
    values = enforcer.impute(prompt)
    assert RULES.compliant(values), (prompt, values)
    for name, value in prompt.items():
        assert values[name] == value
    fine_sum = sum(values[fine_field(t)] for t in range(CONFIG.window))
    assert fine_sum == prompt["total"]


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_synthesis_always_complies(model, seed):
    enforcer = JitEnforcer(model, RULES, CONFIG, EnforcerConfig(seed=seed))
    values = enforcer.synthesize()
    assert RULES.compliant(values)


@given(feasible_prompts())
@settings(max_examples=20, deadline=None)
def test_smt_tier_matches_hybrid_on_compliance(model, prompt):
    for oracle in ("smt", "hybrid"):
        enforcer = JitEnforcer(
            model, RULES, CONFIG,
            EnforcerConfig(oracle=oracle, seed=7, optimistic=False),
        )
        values = enforcer.impute(prompt)
        assert RULES.compliant(values)
