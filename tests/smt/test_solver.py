"""End-to-end DPLL(T) solver tests: models, push/pop, optimization."""

import itertools
import random

import pytest

from repro.smt import (
    And,
    Eq,
    Ge,
    Implies,
    IntVar,
    Le,
    LinExpr,
    Lt,
    Ne,
    Not,
    Or,
    Solver,
)


def bounded_solver(variables, low, high):
    solver = Solver()
    for name in variables:
        solver.add(Le(low, IntVar(name)))
        solver.add(Le(IntVar(name), high))
    return solver


class TestCheck:
    def test_empty_sat(self):
        assert Solver().check().satisfiable

    def test_simple_model(self):
        solver = Solver()
        x = IntVar("x")
        solver.add(Eq(x, 42))
        result = solver.check()
        assert result.satisfiable
        assert result.model["x"] == 42

    def test_unsat_bounds(self):
        solver = Solver()
        x = IntVar("x")
        solver.add(Le(x, 1))
        solver.add(Ge(x, 2))
        assert not solver.check().satisfiable

    def test_disjunction_picks_branch(self):
        solver = bounded_solver(["x"], 0, 100)
        x = IntVar("x")
        solver.add(Or(Eq(x, 3), Eq(x, 77)))
        result = solver.check()
        assert result.model["x"] in (3, 77)

    def test_implication_semantics(self):
        solver = bounded_solver(["x", "y"], 0, 10)
        x, y = IntVar("x"), IntVar("y")
        solver.add(Implies(Ge(x, 5), Ge(y, 9)))
        solver.add(Ge(x, 7))
        result = solver.check()
        assert result.model["y"] >= 9

    def test_disequality(self):
        solver = bounded_solver(["x"], 0, 1)
        solver.add(Ne(IntVar("x"), 0))
        assert solver.check().model["x"] == 1

    def test_parity_unsat(self):
        solver = Solver()
        solver.add(Eq(2 * IntVar("x") + 2 * IntVar("y"), 5))
        assert not solver.check().satisfiable

    def test_model_value_helper(self):
        solver = Solver()
        solver.add(Eq(IntVar("x"), 5))
        result = solver.check()
        assert result.value(IntVar("x") * 2 + 1) == 11


class TestPushPop:
    def test_pop_restores_satisfiability(self):
        solver = Solver()
        x = IntVar("x")
        solver.add(Le(0, x))
        solver.add(Le(x, 10))
        solver.push()
        solver.add(Ge(x, 20))
        assert not solver.check().satisfiable
        solver.pop()
        assert solver.check().satisfiable

    def test_nested_push_pop(self):
        solver = Solver()
        x = IntVar("x")
        solver.add(Le(0, x))
        solver.add(Le(x, 100))
        solver.push()
        solver.add(Ge(x, 50))
        solver.push()
        solver.add(Le(x, 40))
        assert not solver.check().satisfiable
        solver.pop()
        result = solver.check()
        assert result.satisfiable and result.model["x"] >= 50
        solver.pop()
        assert solver.check().satisfiable

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            Solver().pop()

    def test_ground_false_in_scope_vanishes_on_pop(self):
        solver = Solver()
        solver.add(Le(IntVar("x"), 5))
        solver.push()
        solver.add(Le(1, 0))  # ground FALSE
        assert not solver.check().satisfiable
        solver.pop()
        assert solver.check().satisfiable

    def test_many_push_pop_cycles(self):
        solver = bounded_solver(["x"], 0, 9)
        x = IntVar("x")
        for value in range(10):
            solver.push()
            solver.add(Eq(x, value))
            assert solver.check().model["x"] == value
            solver.pop()


class TestOptimize:
    def test_minimize_maximize_interval(self):
        solver = bounded_solver(["x"], 3, 17)
        x = IntVar("x")
        assert solver.minimize(x) == 3
        assert solver.maximize(x) == 17
        assert solver.feasible_interval(x) == (3, 17)

    def test_optimize_expression(self):
        solver = bounded_solver(["x", "y"], 0, 5)
        objective = 2 * IntVar("x") - IntVar("y")
        assert solver.maximize(objective) == 10
        assert solver.minimize(objective) == -5

    def test_optimize_with_constraints(self):
        solver = bounded_solver(["x", "y"], 0, 10)
        solver.add(Eq(IntVar("x") + IntVar("y"), 10))
        solver.add(Implies(Ge(IntVar("x"), 5), Ge(IntVar("y"), 5)))
        # x >= 5 forces y >= 5, and x+y=10 forces equality at 5.
        assert solver.maximize(IntVar("x")) == 5

    def test_optimize_constant_objective(self):
        solver = bounded_solver(["x"], 0, 5)
        constant = LinExpr({}, 7)
        assert solver.minimize(constant) == 7
        assert solver.maximize(constant) == 7
        assert solver.check().satisfiable  # solver not corrupted

    def test_optimize_unsat_raises(self):
        solver = Solver()
        solver.add(Le(IntVar("x"), 0))
        solver.add(Ge(IntVar("x"), 1))
        with pytest.raises(ValueError):
            solver.minimize(IntVar("x"))

    def test_feasible_interval_unsat_returns_none(self):
        solver = Solver()
        solver.add(Le(IntVar("x"), 0))
        solver.add(Ge(IntVar("x"), 1))
        assert solver.feasible_interval(IntVar("x")) is None

    def test_unbounded_detection(self):
        solver = Solver()
        solver.add(Ge(IntVar("x"), 0))
        assert solver.maximize(IntVar("x")) is None
        assert solver.minimize(IntVar("x")) == 0


class TestPaperExample:
    """The R1-R3 walk-through from the paper's Figs. 1 and 2."""

    BW = 60
    TOTAL = 100

    def make_solver(self):
        solver = Solver()
        fine = [IntVar(f"I{t}") for t in range(5)]
        for t in range(5):
            solver.add(Le(0, fine[t]))  # R1
            solver.add(Le(fine[t], self.BW))
        solver.add(Eq(sum(fine[1:], fine[0]), self.TOTAL))  # R2
        solver.add(Or(*[Ge(fine[t], self.BW // 2) for t in range(5)]))  # R3
        return solver, fine

    def test_initial_sat(self):
        solver, _ = self.make_solver()
        assert solver.check().satisfiable

    def test_i3_range_after_prefix(self):
        solver, fine = self.make_solver()
        for t, value in [(0, 20), (1, 15), (2, 25)]:
            solver.add(Eq(fine[t], value))
        assert solver.feasible_interval(fine[3]) == (0, 40)

    def test_i4_forced_after_i3(self):
        solver, fine = self.make_solver()
        for t, value in [(0, 20), (1, 15), (2, 25), (3, 39)]:
            solver.add(Eq(fine[t], value))
        # Paper step 5: only one valid value remains.
        assert solver.feasible_interval(fine[4]) == (1, 1)

    def test_r3_binds_when_no_burst_yet(self):
        solver, fine = self.make_solver()
        for t, value in [(0, 20), (1, 15), (2, 25), (3, 10)]:
            solver.add(Eq(fine[t], value))
        # Sum forces I4 = 30, which also satisfies R3 exactly.
        assert solver.feasible_interval(fine[4]) == (30, 30)

    def test_paper_violating_output_refuted(self):
        solver, fine = self.make_solver()
        # The vanilla LLM output from Fig. 1a: [20, 15, 25, 70, 8].
        for t, value in [(0, 20), (1, 15), (2, 25), (3, 70), (4, 8)]:
            solver.add(Eq(fine[t], value))
        assert not solver.check().satisfiable


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        operators = [Le, Ge, Eq, Ne, Lt]
        for _ in range(20):
            names = [f"v{i}" for i in range(rng.randint(1, 3))]
            solver = bounded_solver(names, -5, 5)
            formulas = []
            for _ in range(rng.randint(1, 4)):
                chosen = rng.sample(names, rng.randint(1, len(names)))
                expr = LinExpr(
                    {v: rng.randint(-3, 3) for v in chosen}, rng.randint(-5, 5)
                )
                formula = rng.choice(operators)(expr, rng.randint(-8, 8))
                if rng.random() < 0.3:
                    formula = Not(formula)
                formulas.append(formula)
            for formula in formulas:
                solver.add(formula)
            expected = any(
                all(f.evaluate(dict(zip(names, values))) for f in formulas)
                for values in itertools.product(range(-5, 6), repeat=len(names))
            )
            result = solver.check()
            assert result.satisfiable == expected
            if result.satisfiable:
                model = {v: result.model.get(v, 0) for v in names}
                assert all(f.evaluate(model) for f in formulas)
