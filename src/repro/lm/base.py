"""The language-model protocol LeJIT enforces over.

LeJIT is model-agnostic (the paper swaps GPT-2 in and out freely): anything
that maps a token prefix to a next-token distribution can be guided.  Both
the numpy transformer and the n-gram model implement this protocol.

The batched enforcement engine additionally wants one *batched* call per
lock-step -- ``next_distributions`` maps B prefixes to a (B, V) matrix.
Implementing it is optional: :func:`batched_next_distributions` dispatches
to the model's native batched path when present and otherwise loops the
single-prefix method, so third-party models keep working unchanged.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from .tokenizer import CharTokenizer

__all__ = ["LanguageModel", "batched_next_distributions"]


@runtime_checkable
class LanguageModel(Protocol):
    """Autoregressive character-level language model."""

    tokenizer: CharTokenizer

    def next_distribution(self, prefix_ids: Sequence[int]) -> np.ndarray:
        """Probability distribution over the next token given the prefix.

        Returns a 1-D float array of length ``tokenizer.vocab_size`` that
        sums to 1.  The prefix always starts with BOS.
        """
        ...


def batched_next_distributions(
    model: LanguageModel,
    batch_of_prefix_ids: Sequence[Sequence[int]],
    cache=None,
    rows: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Next-token distributions for a batch of prefixes, shape (B, V).

    Protocol-level fallback: models exposing ``next_distributions`` (the
    transformer's padded batch forward, the n-gram's deduplicated lookup)
    answer in one call; anything else is looped row by row, which keeps
    every :class:`LanguageModel` usable under the batched engine.  Each
    returned row is exactly what ``next_distribution`` would return for
    that prefix, so batching never changes sampling behavior.

    ``cache``/``rows`` route incremental decoding: drivers that obtained a
    KV cache from ``model.new_kv_cache`` pass it back with one cache row
    per prefix, and the model reuses each row's cached K/V instead of
    re-encoding the whole prefix.  Both are ignored for models without
    KV-cache support (``cache`` is then always None -- only the model's own
    ``new_kv_cache`` produces one).
    """
    batched = getattr(model, "next_distributions", None)
    if batched is not None:
        if cache is not None:
            return np.asarray(
                batched(batch_of_prefix_ids, cache=cache, rows=rows),
                dtype=np.float64,
            )
        return np.asarray(batched(batch_of_prefix_ids), dtype=np.float64)
    return np.stack(
        [
            np.asarray(model.next_distribution(prefix), dtype=np.float64)
            for prefix in batch_of_prefix_ids
        ]
    )
