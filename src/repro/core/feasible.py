"""Feasible-region oracles: what values may the current variable take?

This is where the SMT solver "natively joins the inference process".  An
oracle tracks the record's rules plus the values generated so far and
answers two questions per variable:

* :meth:`feasible_set` -- a sound *over-approximation* of the values the
  variable can take such that the whole record can still be completed
  (the paper's dynamic partial instantiation + lookahead);
* :meth:`confirm` -- the exact check that a concrete value admits a
  rule-compliant completion.

Three implementations realize the solver-tier ablation of DESIGN.md:

* :class:`SmtOracle` -- both answers from the DPLL(T) solver (exact ranges);
* :class:`IntervalOracle` -- both from bounds propagation (fast, sound for
  pruning, but incomplete: it can let dead ends through);
* :class:`HybridOracle` (default) -- interval ranges for cheap per-digit
  masking, solver confirmation at variable boundaries.  This is the
  configuration that guarantees compliance at tractable cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import InfeasibleRecord, SolverBudgetExceeded
from ..obs import OBS
from ..rules.dsl import RuleSet
from ..rules.io import rules_fingerprint
from ..smt import (
    SAT,
    UNSAT,
    And,
    Atom,
    BudgetMeter,
    Eq,
    Formula,
    IntVar,
    Le,
    LinCon,
    LinExpr,
    Or,
    Solver,
    propagate,
)
from ..smt.intervals import Interval
from ..smt.simplify import simplify, substitute, to_nnf
from ..smt.terms import FALSE, TRUE, BoolConst, Implies, Iff, Not
from .transition import FeasibleSet

__all__ = [
    "FeasibilityOracle",
    "SmtOracle",
    "IntervalOracle",
    "HybridOracle",
    "InfeasibleRecordError",
    "OracleCache",
]

Bounds = Mapping[str, Tuple[int, int]]

# An oracle's answers are a pure function of (rule set, bounds, the ordered
# history of fixed values).  The *state key* captures that history exactly:
# the begin_record assignment (order-canonicalized -- residualization
# substitutes it in one step) plus the sequence of fix() calls in order
# (incremental refolds are path-dependent, so order is part of the key).
StateKey = Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]


class OracleCache:
    """Bounded memo shared by every oracle of one enforcer or engine.

    Concurrent sessions of a batched engine repeatedly reach identical
    partial assignments -- every synthesis record starts from the empty
    prefix, and coarse prompts repeat across a workload.  This cache lets
    them share three kinds of (deterministic, state-keyed) work:

    * ``fs``       feasible sets per (state, variable);
    * ``istate``   the interval tier's refolded constraint state;
    * ``confirm``  definite (never UNKNOWN) confirmation verdicts.

    Soundness rests on the state key being exact: two oracles with equal
    keys have byte-identical logical state, so replaying a cached answer is
    indistinguishable from recomputing it.  Entries are only ever written
    from fully-computed, immutable snapshots; UNKNOWN verdicts (budget
    exhaustion) are never cached, so resource-dependent outcomes stay live.

    Keys embed the rule set's *content fingerprint*
    (:func:`~repro.rules.io.rules_fingerprint`), which partitions the
    cache by rule-set hash: oracles over identical rule content share
    verdicts -- across tenants, lanes, and rebinds -- while any content
    difference isolates them completely, so a sat/unsat verdict cached
    under pack A can never be served for pack B.  Per-partition counters
    make mixed-tenant behaviour debuggable, and :meth:`evict_partition`
    drops a retired pack's verdicts wholesale.
    """

    #: Default FIFO capacity, used by the engine and the serving scheduler
    #: when the caller does not configure one explicitly.
    DEFAULT_ENTRIES = 65536

    def __init__(self, max_entries: int = DEFAULT_ENTRIES):
        self.max_entries = max(1, int(max_entries))
        self._data: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # partition -> [hits, misses, evictions, entries]; the partition of
        # a key is the rule-set fingerprint its oracle baked into the tag.
        self._partitions: Dict[object, List[int]] = {}

    @staticmethod
    def _partition_of(key: Tuple) -> object:
        tag = key[1] if len(key) > 1 else None
        if isinstance(tag, tuple) and tag:
            return tag[0]
        return "default"

    def _partition_row(self, key: Tuple) -> List[int]:
        partition = self._partition_of(key)
        row = self._partitions.get(partition)
        if row is None:
            row = self._partitions[partition] = [0, 0, 0, 0]
        return row

    def lookup(self, key: Tuple):
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            self._partition_row(key)[1] += 1
            return None
        self.hits += 1
        self._partition_row(key)[0] += 1
        return entry

    def store(self, key: Tuple, value: object) -> None:
        if key not in self._data:
            if len(self._data) >= self.max_entries:
                # FIFO eviction: drop the oldest insertion (dicts are
                # ordered) and charge the eviction to *its* partition.
                oldest = next(iter(self._data))
                self._data.pop(oldest)
                self.evictions += 1
                row = self._partition_row(oldest)
                row[2] += 1
                row[3] -= 1
            self._partition_row(key)[3] += 1
        self._data[key] = value

    def evict(self, key: Tuple) -> bool:
        """Drop one entry; True if it was resident.

        Used by the poisoned-lane path: a session that dies mid-record may
        have stored snapshots computed by a faulty oracle, so its lane
        evicts them rather than letting the next admitted record adopt
        state of unknown provenance.
        """
        if self._data.pop(key, None) is None:
            return False
        self.evictions += 1
        row = self._partition_row(key)
        row[2] += 1
        row[3] -= 1
        return True

    def evict_partition(self, partition: object) -> int:
        """Drop every entry of one rule-set partition; returns the count.

        Called when a rule pack is retired: its verdicts will never be
        queried again (new requests cannot name it), so holding them only
        crowds out live tenants' entries.
        """
        doomed = [
            key for key in self._data if self._partition_of(key) == partition
        ]
        for key in doomed:
            self._data.pop(key)
        count = len(doomed)
        if count:
            self.evictions += count
            row = self._partitions.get(partition)
            if row is not None:
                row[2] += count
                row[3] -= count
        return count

    def __contains__(self, key: Tuple) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Operator-facing counters (served verbatim by ``GET /metrics``).

        ``partitions`` breaks hits/misses/evictions/entries down per
        rule-set fingerprint, so a mixed-tenant deployment can see which
        pack's verdicts are hot and which are being crowded out.
        """
        partitions = {}
        for partition, row in self._partitions.items():
            hits, misses, evictions, entries = row
            total = hits + misses
            partitions[str(partition)] = {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "entries": entries,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }
        return {
            "entries": len(self._data),
            "capacity": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
            "partitions": partitions,
        }

    # Backwards-compatible alias (pre-serving callers used snapshot()).
    snapshot = stats


def residualize(formula: Formula, fixed: Mapping[str, int]) -> Formula:
    """Substitute fixed values, push negations to atoms, and fold constants.

    The result is in NNF, so conjunctive information can be harvested by
    :func:`_collect_lincons` and asserted compactly by the solver.
    """
    return simplify(to_nnf(substitute(formula, fixed)))


class InfeasibleRecordError(InfeasibleRecord):
    """The rules admit no completion for the current record prefix."""


class FeasibilityOracle:
    """Common interface; concrete oracles override the query methods.

    ``meter`` (optional) is a shared :class:`~repro.smt.BudgetMeter`: every
    solver the oracle spins up charges its deterministic work (conflicts,
    pivots, theory rounds, ...) against the meter's budget.  Budget
    exhaustion surfaces as :class:`~repro.errors.SolverBudgetExceeded` --
    distinct from :class:`InfeasibleRecordError`, which is a genuine UNSAT.

    ``cache`` (optional) is an :class:`OracleCache` shared across the
    oracles of one enforcer or engine; ``pool_reuse`` > 0 lets solver-backed
    tiers keep one solver instance across that many consecutive records
    (reset via push/pop) instead of rebuilding it per record.

    ``mask_table`` (optional) is a compiled
    :class:`~repro.rules.compile.CompiledMaskTable` for this rule set
    (duck-typed: the rules package cannot import core).  When present,
    every query first consults the table's per-record abstract state and
    answers by integer lookup on states the compiler proved *exact* --
    provably equal to this oracle's own answer -- falling back to the
    live machinery only on imprecise states.  Live solver state is built
    lazily: a record whose queries are all table-answered never touches a
    solver, and the first live-needed query replays the record's
    begin+fix history (the state key) to reconstruct the identical live
    state a mask-off run would hold, preserving byte parity.
    ``mask_stats`` is a shared :class:`~repro.rules.compile.MaskLookupStats`
    accumulating hit/fallback/live counters across every oracle of one
    enforcer.
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
        cache: Optional[OracleCache] = None,
        pool_reuse: int = 0,
        mask_table=None,
        mask_stats=None,
    ):
        self.rules = rules
        self.bounds = dict(bounds)
        self.fixed: Dict[str, int] = {}
        self.meter = meter
        self.cache = cache
        self.pool_reuse = int(pool_reuse)
        self.mask_table = mask_table
        self.mask_stats = mask_stats
        # Where the last answer came from: "mask" (table lookup) or "live".
        # Observability reads this to split solver spans by source.
        self.last_source = "live"
        self._mask_state = None  # per-record abstract state, if a table is set
        self._live_ready = True  # live machinery reflects the state key
        # Content-hashed tag: the fingerprint is the cache *partition*, so
        # oracles over identical rule content share entries (across lanes,
        # tenants, and hot-swap rebinds) while differing content -- even
        # with identical pack names -- can never alias.  The type name
        # keeps solver-exact and interval-approximate answers apart.
        self._cache_tag = (rules_fingerprint(rules), type(self).__name__)
        self._state_key: StateKey = ((), ())

    # -- state-key bookkeeping (see StateKey above) ---------------------------

    def _reset_state_key(self, fixed: Mapping[str, int]) -> None:
        self._state_key = (
            tuple(sorted((name, int(value)) for name, value in fixed.items())),
            (),
        )

    def _extend_state_key(self, variable: str, value: int) -> None:
        base, fixes = self._state_key
        self._state_key = (base, fixes + ((variable, int(value)),))

    def _cache_key(self, section: str, *parts) -> Tuple:
        return (section, self._cache_tag, self._state_key) + parts

    def _cached_feasible_set(self, variable: str, compute) -> FeasibleSet:
        """Memoized feasible set for the current state; sound because the
        state key pins the oracle's exact logical state."""
        if self.cache is None:
            return compute()
        key = self._cache_key("fs", variable)
        hit = self.cache.lookup(key)
        if hit is not None:
            return hit
        feasible = compute()
        self.cache.store(key, feasible)
        return feasible

    # -- compiled-mask fast path ------------------------------------------------
    #
    # The table's per-record state mirrors the live refold exactly; on
    # states the compiler proved exact, its answers equal the live
    # oracle's, so serving them preserves byte parity.  Each helper
    # returns None (or False for _mask_begin) when the live path must
    # answer instead.

    def _mask_begin(self, fixed: Optional[Mapping[str, int]]) -> bool:
        """Open the record on the compiled table; True when the table owns
        it (live machinery stays untouched until a query needs it)."""
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._reset_state_key(self.fixed)
        self._mask_state = None
        self._live_ready = True
        table = self.mask_table
        if table is None:
            return False
        state = table.open_record(self.fixed)
        self._mask_state = state
        stats = self.mask_stats
        if state.infeasible():
            # Definite: the conjunctive fragment alone is violated, so the
            # live path would refute too -- raise without touching it.
            if stats is not None:
                stats.hits += 1
            self.last_source = "mask"
            raise InfeasibleRecordError(
                f"compiled mask table refutes fixed values {self.fixed}"
            )
        if not state.exact():
            if stats is not None:
                stats.fallbacks += 1
            return False
        if stats is not None:
            stats.hits += 1
        self.last_source = "mask"
        self._live_ready = False
        return True

    def _mask_feasible_set(self, variable: str) -> Optional[FeasibleSet]:
        state = self._mask_state
        if state is None:
            return None
        stats = self.mask_stats
        if state.infeasible():
            if stats is not None:
                stats.hits += 1
            self.last_source = "mask"
            return FeasibleSet.empty()
        if not state.exact():
            if stats is not None:
                stats.fallbacks += 1
            return None
        if stats is not None:
            stats.hits += 1
        self.last_source = "mask"
        interval = state.project(variable)
        if interval is None:
            return FeasibleSet.empty()
        return FeasibleSet.from_interval(interval[0], interval[1])

    def _mask_confirm(self, variable: str, value: int) -> Optional[bool]:
        state = self._mask_state
        if state is None:
            return None
        stats = self.mask_stats
        if state.infeasible():
            if stats is not None:
                stats.hits += 1
            self.last_source = "mask"
            return False
        if not state.exact():
            if stats is not None:
                stats.fallbacks += 1
            return None
        if stats is not None:
            stats.hits += 1
        self.last_source = "mask"
        return state.contains(variable, int(value))

    def _mask_fix(self, variable: str, value: int) -> None:
        if self._mask_state is not None:
            self._mask_state.assign(variable, int(value))

    def _count_live(self) -> None:
        self.last_source = "live"
        if self.mask_stats is not None:
            self.mask_stats.live_queries += 1

    def _ensure_live(self) -> None:
        """Replay the record's begin+fix history into the live machinery.

        Only reached when ``begin_record`` was table-answered (a precise
        state) and a later operation needs the live path.  The state key
        *is* the replay log: re-running ``_begin_record_impl`` with the
        base assignment and re-applying each fix in order reconstructs --
        state key included -- exactly the live state a mask-off run would
        hold here, so every subsequent answer matches byte for byte.
        """
        if self._live_ready:
            return
        self._live_ready = True
        if self.mask_stats is not None:
            self.mask_stats.replays += 1
        base_items, fix_items = self._state_key
        self._begin_record_impl(dict(base_items))
        for variable, value in fix_items:
            self.fixed[variable] = value
            self._extend_state_key(variable, value)
            self._live_fix(variable, value)

    def _live_fix(self, variable: str, value: int) -> None:
        raise NotImplementedError

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        """Start a fresh record with the given already-known variables."""
        raise NotImplementedError

    def discard_record_state(self) -> None:
        """Drop all per-record state after a session died mid-record.

        A poisoned lane (fault injection, an exception escaping between
        paired state updates) may leave an oracle's internal state out of
        sync with its state key; the next ``begin_record`` would then adopt
        stale solver frames or refold snapshots.  Subclasses extend this to
        tear down anything that could survive into the next record --
        pooled solvers, refold state, and the shared-cache snapshots the
        dying record wrote under its current state key.
        """
        self.fixed = {}
        self._state_key = ((), ())
        self._mask_state = None
        self._live_ready = True

    def feasible_set(self, variable: str) -> FeasibleSet:
        raise NotImplementedError

    def confirm(self, variable: str, value: int) -> bool:
        raise NotImplementedError

    def confirm_status(self, variable: str, value: int) -> str:
        """Tri-state confirm: ``sat`` | ``unsat`` | ``unknown``.

        The default derives from :meth:`confirm`; solver-backed oracles
        override it to surface UNKNOWN (budget exhaustion) distinctly so
        the enforcer can step down its degradation ladder instead of
        misreading resource exhaustion as a refuted value.
        """
        return SAT if self.confirm(variable, value) else UNSAT

    def fix(self, variable: str, value: int) -> None:
        raise NotImplementedError

    def _clip(self, variable: str, feasible: FeasibleSet) -> FeasibleSet:
        low, high = self.bounds[variable]
        return feasible.intersect_interval(low, high)


class SmtOracle(FeasibilityOracle):
    """Exact feasibility via the DPLL(T) solver.

    The record's known values are *substituted into the rules first*, so the
    solver only ever sees the residual formulas over still-free variables --
    typically a handful of atoms instead of hundreds.  This is the paper's
    "dynamic partial instantiation": fixing values deactivates rules (their
    residual simplifies to TRUE) and specializes the rest.

    With ``pool_reuse`` == 0 a fresh solver is built per record (cheap at
    residual size).  With ``pool_reuse`` > 0 one solver is kept across that
    many consecutive records: every record's assertions live inside a
    dedicated push level, popped at the next ``begin_record``, so the
    incremental SAT core's learned theory lemmas and Tseitin encodings
    carry over -- they are valid facts about the *atoms*, independent of
    which record asserted them.  The reuse cap bounds the clause-database
    growth that popped selector levels leave behind.

    Reuse preserves *verdicts and exact optima* -- SAT/UNSAT answers and
    ``feasible_interval`` endpoints are pure functions of the asserted
    formulas -- but NOT model choice or work counters: retained lemmas
    steer which model the SAT core finds first and how many theory rounds
    a query takes.  Byte-determinism therefore requires that only
    verdicts and optima reach emitted records; :meth:`any_model` values
    must never be emitted directly (the enforcer's forced-value path
    learned this the hard way: pooled serving lanes and fresh-solver CLI
    lanes forced different bytes for the same record).
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
        cache: Optional[OracleCache] = None,
        pool_reuse: int = 0,
        mask_table=None,
        mask_stats=None,
    ):
        super().__init__(
            rules,
            bounds,
            meter,
            cache=cache,
            pool_reuse=pool_reuse,
            mask_table=mask_table,
            mask_stats=mask_stats,
        )
        self._solver: Optional[Solver] = None
        self._open_levels = 0  # record frame + one level per fix()
        self._pool_used = 0  # records served by the current solver
        self._base_fixed: Optional[Dict[str, int]] = None  # frame's assignment
        self._base_ok = False  # frame fully asserted + proven SAT

    def _fresh_record_solver(self) -> Solver:
        """A solver positioned at an empty record frame."""
        if (
            self._solver is None
            or self.pool_reuse <= 0
            or self._pool_used >= self.pool_reuse
        ):
            self._solver = Solver(meter=self.meter)
            self._pool_used = 0
        else:
            # Pop the previous record's frame(s); learned lemmas survive.
            for _ in range(self._open_levels):
                self._solver.pop()
        self._solver.push()
        self._open_levels = 1
        self._pool_used += 1
        return self._solver

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        if self._mask_begin(fixed):
            return
        self._count_live()
        if not OBS.active:
            return self._begin_record_impl(self.fixed)
        with OBS.profile("oracle_begin", oracle="smt"):
            return self._begin_record_impl(self.fixed)

    def _begin_record_impl(self, fixed: Optional[Mapping[str, int]]) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._reset_state_key(self.fixed)
        # Pool fast path: consecutive records with the *same* base assignment
        # (ubiquitous in synthesis, where every record starts from {}) keep
        # the record frame's assertions -- pop only the fix() levels back to
        # the frame, skipping residualization, folding, re-assertion, and
        # the initial SAT check (whose answer is pinned by the frame).
        if (
            self._base_ok
            and self._solver is not None
            and self.pool_reuse > 0
            and self._pool_used < self.pool_reuse
            and self.fixed == self._base_fixed
        ):
            for _ in range(self._open_levels - 1):
                self._solver.pop()
            self._open_levels = 1
            self._pool_used += 1
            return
        self._base_fixed = dict(self.fixed)
        self._base_ok = False
        self._solver = self._fresh_record_solver()
        disjunctive: List[Formula] = []
        conjunctive: List[LinCon] = []
        for formula in self.rules.formulas():
            residual = residualize(formula, self.fixed)
            if residual == TRUE:
                continue
            if residual == FALSE:
                raise InfeasibleRecordError(
                    f"rule refuted by fixed values {self.fixed}"
                )
            pure = _pure_conjunctive(residual)
            if pure is None:
                disjunctive.append(residual)
            else:
                conjunctive.extend(pure)
        # Fold the (typically hundreds of) conjunctive residual constraints
        # down to the strongest bound per linear form -- the solver then sees
        # tens of atoms instead of hundreds, which matters per token.
        folded_bounds, folded_other = _fold_lincons(conjunctive, self.bounds)
        for name, (low, high) in folded_bounds.items():
            if name in self.fixed:
                if not low <= self.fixed[name] <= high:
                    raise InfeasibleRecordError(
                        f"fixed {name}={self.fixed[name]} outside [{low},{high}]"
                    )
                continue
            if low > high:
                raise InfeasibleRecordError(f"empty folded domain for {name}")
            self._solver.add(Le(low, IntVar(name)))
            self._solver.add(Le(IntVar(name), high))
        for formula in folded_other:
            self._solver.add(formula)
        for formula in disjunctive:
            self._solver.add(formula)
        result = self._solver.check()
        if result.is_unknown:
            raise SolverBudgetExceeded(
                "budget exhausted while opening record",
                resource=self._solver.meter.last_exhausted,
            )
        if not result.satisfiable:
            raise InfeasibleRecordError(
                f"rules are unsatisfiable given fixed values {self.fixed}"
            )
        self._base_ok = True

    def feasible_set(self, variable: str) -> FeasibleSet:
        masked = self._mask_feasible_set(variable)
        if masked is not None:
            return masked
        self._count_live()
        self._ensure_live()
        return self._cached_feasible_set(variable, lambda: self._feasible_set(variable))

    def _feasible_set(self, variable: str) -> FeasibleSet:
        interval = self._solver.feasible_interval(IntVar(variable))
        if interval is None:
            return FeasibleSet.empty()
        low, high = interval
        if low is None or high is None:  # bounds always close the domain
            low_default, high_default = self.bounds[variable]
            low = low_default if low is None else low
            high = high_default if high is None else high
        return self._clip(variable, FeasibleSet.from_interval(low, high))

    def confirm(self, variable: str, value: int) -> bool:
        return self.confirm_status(variable, value) == SAT

    def confirm_status(self, variable: str, value: int) -> str:
        masked = self._mask_confirm(variable, value)
        if masked is not None:
            return SAT if masked else UNSAT
        self._count_live()
        self._ensure_live()
        key = None
        if self.cache is not None:
            key = self._cache_key("confirm", variable, int(value))
            hit = self.cache.lookup(key)
            if hit is not None:
                return hit
        self._solver.push()
        try:
            self._solver.add(Eq(IntVar(variable), value))
            status = self._solver.check().status
        finally:
            self._solver.pop()
        # Only definite verdicts are cached: UNKNOWN means the budget ran
        # out, and a later query under a fresh budget may well decide it.
        if key is not None and status in (SAT, UNSAT):
            self.cache.store(key, status)
        return status

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        self._extend_state_key(variable, value)
        self._mask_fix(variable, value)
        if self._live_ready:
            self._live_fix(variable, value)

    def _live_fix(self, variable: str, value: int) -> None:
        self._solver.push()
        self._open_levels += 1
        self._solver.add(Eq(IntVar(variable), value))

    def discard_record_state(self) -> None:
        """Retire the pooled solver outright: its push/pop frames and the
        ``_base_ok`` fast-path marker may not match the state key after a
        mid-record abort, and rebuilding one solver is cheap next to
        serving a wrong answer from a stale frame."""
        super().discard_record_state()
        self._solver = None
        self._open_levels = 0
        self._pool_used = 0
        self._base_fixed = None
        self._base_ok = False

    def any_model(self) -> Dict[str, int]:
        """A full rule-compliant completion of the current prefix.

        Which model comes back depends on solver-internal search state
        (learned clauses, variable numbering, pooled-reuse history), so
        the values are *not* deterministic across solver configurations.
        Use it for existence checks and audits, never as a source of
        emitted record bytes -- those must come from verdicts and exact
        interval optima, which reuse does preserve.
        """
        self._count_live()
        self._ensure_live()
        result = self._solver.check()
        if result.is_unknown:
            raise SolverBudgetExceeded(
                "budget exhausted while extracting a model",
                resource=self._solver.meter.last_exhausted,
            )
        if not result.satisfiable:
            raise InfeasibleRecordError("no completion exists")
        model = dict(result.model or {})
        for name, (low, _) in self.bounds.items():
            model.setdefault(name, max(low, 0))
        return model


def _pure_conjunctive(formula: Formula) -> Optional[List[LinCon]]:
    """The formula as a list of linear constraints, or None if it has any
    genuinely disjunctive structure."""
    out: List[LinCon] = []
    ok = _collect_pure(formula, out)
    return out if ok else None


def _collect_pure(node: Formula, out: List[LinCon]) -> bool:
    if isinstance(node, Atom):
        out.append(LinCon.make(node.expr.coeffs, node.expr.const, node.op))
        return True
    if isinstance(node, And):
        return all(_collect_pure(arg, out) for arg in node.args)
    if isinstance(node, Not) and isinstance(node.arg, Atom) and node.arg.op == "==":
        atom = node.arg
        out.append(LinCon.make(atom.expr.coeffs, atom.expr.const, "!="))
        return True
    return False


def _fold_lincons(
    constraints: List[LinCon], base_bounds: Bounds
) -> Tuple[Dict[str, Tuple[int, int]], List[Formula]]:
    """Tighten per-variable bounds and keep only the strongest constraint
    per multi-variable linear form.  Returns (bounds, leftover formulas)."""
    bounds: Dict[str, Tuple[int, int]] = dict(base_bounds)
    strongest: Dict[Tuple, LinCon] = {}
    other: List[Formula] = []
    for con in constraints:
        reduced = con.normalized()
        if reduced is None:
            continue
        if reduced.is_ground():
            if not reduced.ground_truth():
                # Represent as an always-false formula; the caller's check()
                # will report infeasibility with this asserted.
                other.append(FALSE)
            continue
        items = reduced.items
        if len(items) == 1 and reduced.op == "<=":
            name, coeff = items[0]
            low, high = bounds.get(name, (None, None))
            if coeff > 0:  # coeff*v <= -const
                limit = (-reduced.const) // coeff
                high = limit if high is None else min(high, limit)
            else:  # coeff < 0:  v >= ceil(const / -coeff)
                limit = -((-reduced.const) // (-coeff))
                low = limit if low is None else max(low, limit)
            bounds[name] = (low, high)
            continue
        if reduced.op == "<=":
            key = (items, "<=")
            seen = strongest.get(key)
            if seen is None or reduced.const > seen.const:
                strongest[key] = reduced
            continue
        # Equalities and disequalities pass through unfolded.
        expr = LinExpr(dict(items), reduced.const)
        if reduced.op == "==":
            other.append(Atom(expr, "=="))
        else:
            other.append(Not(Atom(expr, "==")))
    for con in strongest.values():
        other.append(Atom(LinExpr(dict(con.items), con.const), "<="))
    # Close any half-open bounds back to the base domain.
    closed: Dict[str, Tuple[int, int]] = {}
    for name, (low, high) in bounds.items():
        base_low, base_high = base_bounds.get(name, (0, 0))
        closed[name] = (
            base_low if low is None else low,
            base_high if high is None else high,
        )
    return closed, other


def _conjunctive_lincons(
    formula: Formula, fixed: Mapping[str, int]
) -> List[LinCon]:
    """Extract linear constraints *implied* by the formula given ``fixed``.

    Sound under-approximation of the formula's strength: every returned
    constraint holds in all models extending ``fixed``.  Disjunctions
    contribute only once all but one branch is ground-false.
    """
    grounded = residualize(formula, fixed)
    out: List[LinCon] = []
    _collect_lincons(grounded, out)
    return out


def _collect_lincons(node: Formula, out: List[LinCon]) -> None:
    if isinstance(node, BoolConst):
        if not node.value:
            out.append(LinCon.make({}, 1, "<="))  # ground false marker
        return
    if isinstance(node, Atom):
        out.append(LinCon.make(node.expr.coeffs, node.expr.const, node.op))
        return
    if isinstance(node, And):
        for arg in node.args:
            _collect_lincons(arg, out)
        return
    if isinstance(node, Or):
        live = [arg for arg in node.args if arg != FALSE]
        if not live:
            out.append(LinCon.make({}, 1, "<="))
        elif len(live) == 1:
            _collect_lincons(live[0], out)
        return  # 2+ live branches: nothing conjunctively implied
    if isinstance(node, Not):
        if isinstance(node.arg, Atom) and node.arg.op == "==":
            atom = node.arg
            out.append(LinCon.make(atom.expr.coeffs, atom.expr.const, "!="))
        return
    if isinstance(node, (Implies, Iff)):
        # simplify() rewrites these away; reaching here means no information.
        return


class IntervalOracle(FeasibilityOracle):
    """Bounds-propagation tier: fast, sound for pruning, incomplete.

    State is refolded after every ``fix``: single-variable residual
    constraints collapse into a per-variable *box*, multi-variable ones keep
    only the strongest bound per linear form, and disjunctive residuals are
    held back symbolically (they only inform propagation once all but one
    branch dies).  Queries then run propagation over this compact state.
    """

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
        cache: Optional[OracleCache] = None,
        pool_reuse: int = 0,
        mask_table=None,
        mask_stats=None,
    ):
        super().__init__(
            rules,
            bounds,
            meter,
            cache=cache,
            pool_reuse=pool_reuse,
            mask_table=mask_table,
            mask_stats=mask_stats,
        )
        self._box: Dict[str, Tuple[int, int]] = dict(bounds)
        self._multi_cons: List[LinCon] = []
        self._disjunctive: List[Formula] = []
        self._refuted = False
        self._domain_cache: Optional[Dict[str, Interval]] = None

    # -- refold-state snapshots ('istate' cache section) ----------------------

    def _restore_istate(self) -> bool:
        """Adopt a cached refold state for the current state key, if any."""
        if self.cache is None:
            return False
        hit = self.cache.lookup(self._cache_key("istate"))
        if hit is None:
            return False
        refuted, box, multi, disjunctive = hit
        self._refuted = refuted
        self._box = dict(box)
        self._multi_cons = list(multi)
        self._disjunctive = list(disjunctive)
        # Never adopt a propagated-domain cache along with the snapshot: a
        # domain computed before some fix() on the producing path would
        # silently *widen* the admissible set here.  Domains are recomputed
        # lazily from the (exact) refold state instead.
        self._domain_cache = None
        return True

    def _store_istate(self) -> None:
        if self.cache is None:
            return
        self.cache.store(
            self._cache_key("istate"),
            (
                self._refuted,
                tuple(self._box.items()),
                tuple(self._multi_cons),
                tuple(self._disjunctive),
            ),
        )

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        if self._mask_begin(fixed):
            return
        self._count_live()
        if not OBS.active:
            return self._begin_record_impl(self.fixed)
        with OBS.profile("oracle_begin", oracle="interval"):
            return self._begin_record_impl(self.fixed)

    def _begin_record_impl(self, fixed: Optional[Mapping[str, int]]) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._reset_state_key(self.fixed)
        if self._restore_istate():
            self._domain_cache = None
        else:
            self._refuted = False
            self._refold(self.rules.formulas(), self.fixed)
            self._store_istate()
        if self._refuted or self._propagate(None, None) is None:
            raise InfeasibleRecordError(
                f"bounds propagation refutes fixed values {self.fixed}"
            )

    def _refold(self, formulas: Iterable[Formula], fixed: Mapping[str, int]) -> None:
        """Residualize ``formulas`` against ``fixed`` and fold the result."""
        self._domain_cache = None
        conjunctive: List[LinCon] = []
        disjunctive: List[Formula] = []
        for formula in formulas:
            reduced = residualize(formula, fixed)
            if reduced == TRUE:
                continue
            if reduced == FALSE:
                self._refuted = True
                return
            pure = _pure_conjunctive(reduced)
            if pure is None:
                disjunctive.append(reduced)
                # A disjunction still conjunctively implies its collapsed
                # parts when all but one branch is dead.
                _collect_lincons(reduced, conjunctive)
            else:
                conjunctive.extend(pure)
        box, other_formulas = _fold_lincons(conjunctive, self.bounds)
        for name, (low, high) in box.items():
            if name in fixed and not low <= fixed[name] <= high:
                self._refuted = True
                return
            if low > high:
                self._refuted = True
                return
        self._box = box
        multi: List[LinCon] = []
        for formula in other_formulas:
            if formula == FALSE:
                self._refuted = True
                return
            _collect_lincons(formula, multi)
        self._multi_cons = multi
        self._disjunctive = disjunctive

    def _initial_domain(self) -> Dict[str, Interval]:
        initial = {
            name: Interval(low, high) for name, (low, high) in self._box.items()
        }
        for name, value in self.fixed.items():
            initial[name] = Interval(value, value)
        return initial

    def _propagate(self, extra_var: Optional[str], extra_value: Optional[int]):
        """Domain after propagation, optionally pinning one trial value."""
        if self._refuted:
            return None
        if extra_var is None and self._domain_cache is not None:
            return self._domain_cache
        if extra_var is None and self.cache is not None:
            # The propagated domain is a pure function of the refold state,
            # which the state key pins exactly -- so unlike ``_domain_cache``
            # (which must be dropped on every state change) the shared entry
            # can never leak a stale, wider domain into a narrower state.
            key = self._cache_key("dom")
            hit = self.cache.lookup(key)
            if hit is not None:
                domain = hit[0]
                self._domain_cache = domain
                return domain
        constraints = list(self._multi_cons)
        initial = self._initial_domain()
        if extra_var is not None:
            pin = initial.get(extra_var, Interval(extra_value, extra_value))
            if not pin.contains(extra_value):
                return None
            initial[extra_var] = Interval(extra_value, extra_value)
            # The trial value may collapse disjunctions; harvest those.
            trial = {extra_var: extra_value}
            for formula in self._disjunctive:
                reduced = residualize(formula, trial)
                if reduced == TRUE:
                    continue
                if reduced == FALSE:
                    return None
                _collect_lincons(reduced, constraints)
        result = propagate(constraints, initial)
        domain = result.domain if result.feasible else None
        if extra_var is None:
            self._domain_cache = domain
            if self.cache is not None:
                # Wrapped in a tuple so a legitimately-infeasible None is
                # distinguishable from a cache miss.
                self.cache.store(self._cache_key("dom"), (domain,))
        return domain

    def feasible_set(self, variable: str) -> FeasibleSet:
        masked = self._mask_feasible_set(variable)
        if masked is not None:
            return masked
        self._count_live()
        self._ensure_live()
        return self._cached_feasible_set(variable, lambda: self._feasible_set(variable))

    def _feasible_set(self, variable: str) -> FeasibleSet:
        domain = self._propagate(None, None)
        if domain is None:
            return FeasibleSet.empty()
        interval = domain.get(variable)
        low_default, high_default = self._box.get(
            variable, self.bounds[variable]
        )
        if interval is None:
            return FeasibleSet.from_interval(low_default, high_default)
        low = low_default if interval.lower is None else interval.lower
        high = high_default if interval.upper is None else interval.upper
        return self._clip(variable, FeasibleSet.from_interval(low, high))

    def confirm(self, variable: str, value: int) -> bool:
        masked = self._mask_confirm(variable, value)
        if masked is not None:
            return masked
        self._count_live()
        self._ensure_live()
        key = None
        if self.cache is not None:
            key = self._cache_key("confirm", variable, int(value))
            hit = self.cache.lookup(key)
            if hit is not None:
                return hit == SAT
        verdict = self._propagate(variable, value) is not None
        if key is not None:
            # Propagation is deterministic and budget-free here, so both
            # verdicts are definite and safe to cache.
            self.cache.store(key, SAT if verdict else UNSAT)
        return verdict

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        self._extend_state_key(variable, value)
        self._mask_fix(variable, value)
        if self._live_ready:
            self._live_fix(variable, value)

    def _live_fix(self, variable: str, value: int) -> None:
        if self._restore_istate():
            return
        if self._refuted:
            self._store_istate()
            return
        # Re-residualize the compact state (not the original rules): the
        # box becomes formulas implicitly via bounds, multi-var constraints
        # specialize, and disjunctions may collapse.
        formulas: List[Formula] = []
        for con in self._multi_cons:
            expr = LinExpr(dict(con.items), con.const)
            if con.op == "<=":
                formulas.append(Atom(expr, "<="))
            elif con.op == "==":
                formulas.append(Atom(expr, "=="))
            else:
                formulas.append(Not(Atom(expr, "==")))
        formulas.extend(self._disjunctive)
        previous_box = self._box
        self._refold(formulas, {variable: value})
        # Folding against self.bounds loses earlier box tightenings; merge.
        merged: Dict[str, Tuple[int, int]] = {}
        for name, (low, high) in self._box.items():
            prev_low, prev_high = previous_box.get(name, (low, high))
            merged[name] = (max(low, prev_low), min(high, prev_high))
            if merged[name][0] > merged[name][1] and name not in self.fixed:
                self._refuted = True
        self._box = merged
        self._store_istate()

    def discard_record_state(self) -> None:
        """Drop the refold state and the shared-cache snapshots the dying
        record stored under its final state key (``istate`` + the derived
        propagated domain), so no later session -- on this lane or any
        other -- can adopt state a poisoned record computed."""
        if self.cache is not None:
            self.cache.evict(self._cache_key("istate"))
            self.cache.evict(self._cache_key("dom"))
        super().discard_record_state()
        self._box = dict(self.bounds)
        self._multi_cons = []
        self._disjunctive = []
        self._refuted = False
        self._domain_cache = None


class HybridOracle(FeasibilityOracle):
    """Interval masks + SMT confirmation: LeJIT's default configuration."""

    def __init__(
        self,
        rules: RuleSet,
        bounds: Bounds,
        meter: Optional[BudgetMeter] = None,
        cache: Optional[OracleCache] = None,
        pool_reuse: int = 0,
        mask_table=None,
        mask_stats=None,
    ):
        super().__init__(
            rules,
            bounds,
            meter,
            cache=cache,
            pool_reuse=pool_reuse,
            mask_table=mask_table,
            mask_stats=mask_stats,
        )
        # The sub-oracles own the mask fast path (each keeps its own
        # per-record table state); the hybrid only mirrors last_source.
        self.interval = IntervalOracle(
            rules,
            bounds,
            meter,
            cache=cache,
            pool_reuse=pool_reuse,
            mask_table=mask_table,
            mask_stats=mask_stats,
        )
        self.smt = SmtOracle(
            rules,
            bounds,
            meter,
            cache=cache,
            pool_reuse=pool_reuse,
            mask_table=mask_table,
            mask_stats=mask_stats,
        )

    def begin_record(self, fixed: Optional[Mapping[str, int]] = None) -> None:
        self.fixed = {k: int(v) for k, v in (fixed or {}).items()}
        self._reset_state_key(self.fixed)
        self.interval.begin_record(self.fixed)  # raises on interval refutation
        self.smt.begin_record(self.fixed)  # raises on exact refutation
        self.last_source = self.smt.last_source

    def feasible_set(self, variable: str) -> FeasibleSet:
        feasible = self.interval.feasible_set(variable)
        self.last_source = self.interval.last_source
        return feasible

    def confirm(self, variable: str, value: int) -> bool:
        return self.confirm_status(variable, value) == SAT

    def confirm_status(self, variable: str, value: int) -> str:
        # Cheap refutation first, exact check second.
        if not self.interval.confirm(variable, value):
            self.last_source = self.interval.last_source
            return UNSAT
        status = self.smt.confirm_status(variable, value)
        self.last_source = self.smt.last_source
        return status

    def fix(self, variable: str, value: int) -> None:
        self.fixed[variable] = value
        self._extend_state_key(variable, value)
        self.interval.fix(variable, value)
        self.smt.fix(variable, value)

    def discard_record_state(self) -> None:
        # An abort between the paired interval/smt updates in fix() leaves
        # the two sub-oracles disagreeing on state -- reset both.
        super().discard_record_state()
        self.interval.discard_record_state()
        self.smt.discard_record_state()

    def any_model(self) -> Dict[str, int]:
        return self.smt.any_model()
