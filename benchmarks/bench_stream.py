"""Streaming enforcement benchmark: one sustained unbounded session.

Feeds a seed-deterministic out-of-order telemetry stream (MMPP arrivals,
jitter, a late tail) through the serial streaming driver and reports the
subsystem's acceptance metrics: emission throughput, watermark lag
percentiles, bounded-memory high-water marks (reorder buffer, carryover
archive, oracle-cache evictions, KV row residency), replay byte parity
over the stream prefix, and a temporal-rule audit of every enforced
window boundary.  No HTTP, no pytest, no third-party deps::

    PYTHONPATH=src python benchmarks/bench_stream.py \
        --records 10000 --out BENCH_stream.json

CI runs the same driver at ``--records 1500`` for a smoke-scale pass.
"""

import argparse
import json
from pathlib import Path

from repro.stream import format_stream_report, run_stream_bench


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=Path("BENCH_stream.json"))
    parser.add_argument(
        "--records", type=int, default=10_000,
        help="events pushed through the sustained session",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--stream-seed", type=int, default=5,
        help="seed of the generated telemetry stream",
    )
    parser.add_argument("--window", type=int, default=2)
    parser.add_argument(
        "--late-policy", choices=("drop", "patch", "reemit"), default="patch"
    )
    parser.add_argument(
        "--late-fraction", type=float, default=0.08,
        help="fraction of events delayed past the lateness bound",
    )
    parser.add_argument(
        "--temporal-rules", type=int, default=32,
        help="mined cross-record rules carried into the enforcement pack",
    )
    parser.add_argument(
        "--parity-records", type=int, default=300,
        help="stream prefix replayed in a fresh session for byte parity",
    )
    args = parser.parse_args()
    report = run_stream_bench(
        records=args.records,
        seed=args.seed,
        stream_seed=args.stream_seed,
        window=args.window,
        late_policy=args.late_policy,
        late_fraction=args.late_fraction,
        temporal_rules=args.temporal_rules,
        parity_records=args.parity_records,
    )
    print(format_stream_report(report))
    ok = (
        report["memory"]["bounded"]
        and report["checks"]["replay_parity"]
        and report["checks"]["boundary_violations"] == 0
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if not ok:
        print("FAILED: bounded-memory / parity / boundary checks")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
