"""Reverse-mode automatic differentiation over numpy arrays.

This is the repo's stand-in for torch: a tape-based autograd engine with
exactly the operator set the LeJIT models need (transformer language model,
MLP imputer, GAN/VAE baselines).  Gradients propagate through a dynamically
built DAG; ``Tensor.backward`` runs a topological sweep.

Broadcasting follows numpy semantics; each op's backward reduces gradients
back to the operand shapes via :func:`_unbroadcast`.  Gradient correctness is
property-tested against central finite differences in
``tests/autograd/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc):
        global _grad_enabled
        _grad_enabled = self._previous
        return False


def is_grad_enabled() -> bool:
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(dtype, copy=False)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus an optional gradient and backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _grad_enabled
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad)

    @staticmethod
    def randn(*shape: int, scale: float = 1.0, rng=None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(
            rng.standard_normal(shape).astype(np.float32) * scale, requires_grad
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # -- graph machinery -------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray, parents: Tuple["Tensor", ...], backward: Callable
    ) -> "Tensor":
        needs = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    # -- elementwise arithmetic -------------------------------------------------

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # -- nonlinearities ----------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximated GELU (the GPT-2 activation)."""
        c = np.float32(np.sqrt(2.0 / np.pi))
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            dt = (1.0 - t**2) * dinner
            self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._make(out_data, (self,), backward)

    # -- reductions ----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else np.prod([self.shape[a] for a in np.atleast_1d(axis)])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(np.float32)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * expanded)

        return Tensor._make(out_data, (self,), backward)

    # -- shape ops -------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes_tuple), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- linear algebra -----------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # -- assembled ops used by models ------------------------------------------------------

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        out_data = np.where(mask, np.float32(value), self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.where(mask, np.float32(0.0), grad))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate with gradient routing back to each operand."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)
