"""Open-loop Poisson load harness for the serving scheduler.

Replays a fixed arrival schedule (exponential inter-arrival gaps, i.e. a
Poisson process at the offered rate) against an in-process
:class:`~repro.serve.scheduler.ContinuousBatchingScheduler` and measures
end-to-end request latency -- queueing included, which is the entire
point: open-loop load does not slow down when the server does, so the
latency distribution honestly reflects saturation.

Every (lanes, offered-load) point runs once per admission policy with the
*same* arrival schedule and the same per-request seeds, so the
``wave``-vs-``continuous`` comparison is paired: identical records at
identical times; only the admission discipline differs.  Process-wide
memos are cleared before every run so no configuration inherits another's
warm caches.

The report feeds ``BENCH_serving.json`` (see ``benchmarks/bench_serving.py``
and ``python -m repro.cli bench-serving``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import EnforcerConfig, JitEnforcer
from ..core import session as _session_module
from ..core.transition import DigitTransitionSystem
from ..data import build_dataset
from ..errors import QueueFull
from ..lm import NgramLM
from ..rules import domain_bound_rules, paper_rules
from .scheduler import ContinuousBatchingScheduler
from .types import DONE, EXPIRED, RequestSpec, ServeRequest

__all__ = ["run_serving_bench", "format_report"]


def _clear_process_memos(model) -> None:
    """Reset cross-configuration memos so runs are comparable."""
    cache = getattr(model, "_dist_cache", None)
    if cache is not None:
        cache.clear()
    DigitTransitionSystem._MEMO.clear()
    _session_module._MASK_MEMO.clear()


def _percentile(sorted_values: List[float], q: float) -> float:
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def _build_setting(seed: int):
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=seed
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    rules = paper_rules(dataset.config)
    fallback = [domain_bound_rules(dataset.config)]
    prompts = [w.coarse() for w in dataset.test_windows()[:8]]
    return dataset, model, rules, fallback, prompts


def _run_one(
    model,
    rules,
    fallback,
    config,
    prompts,
    arrivals: Sequence[float],
    lanes: int,
    policy: str,
    queue_depth: int,
    timeout_ms: Optional[float],
) -> Dict[str, object]:
    """One measured run: replay ``arrivals`` and collect the distribution."""
    _clear_process_memos(model)
    enforcer = JitEnforcer(
        model, rules, config, EnforcerConfig(seed=29), fallback_rules=fallback
    )
    scheduler = ContinuousBatchingScheduler(
        enforcer, lanes=lanes, queue_depth=queue_depth, admit_policy=policy
    )
    handles: List[Optional[ServeRequest]] = []
    rejected = 0
    with scheduler:
        start = time.monotonic()
        for index, offset in enumerate(arrivals):
            delay = start + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            spec = RequestSpec(
                "impute",
                coarse=prompts[index % len(prompts)],
                seed=1000 + index,
                timeout_ms=timeout_ms,
            )
            try:
                handles.append(scheduler.submit(spec))
            except QueueFull:
                rejected += 1
                handles.append(None)
        for handle in handles:
            if handle is not None:
                handle.wait(timeout=120)
        metrics = scheduler.metrics()
    latencies = sorted(
        handle.latency_ms
        for handle in handles
        if handle is not None and handle.status == DONE
    )
    completed = len(latencies)
    expired = sum(
        1 for h in handles if h is not None and h.status == EXPIRED
    )
    finish_times = [
        h.finished_at
        for h in handles
        if h is not None and h.finished_at is not None
    ]
    makespan = (max(finish_times) - start) if finish_times else 0.0
    entry: Dict[str, object] = {
        "lanes": lanes,
        "policy": policy,
        "offered_rps": None,  # filled by the caller
        "requests": len(arrivals),
        "completed": completed,
        "rejected": rejected,
        "expired": expired,
        "failed": len(arrivals) - completed - rejected - expired,
        "throughput_rps": round(completed / makespan, 2) if makespan else 0.0,
        "lane_occupancy": metrics["lm"]["lane_occupancy"],
        "cache_hit_rate": (metrics["oracle_cache"] or {}).get("hit_rate"),
    }
    if latencies:
        entry.update(
            p50_ms=round(_percentile(latencies, 0.50), 2),
            p99_ms=round(_percentile(latencies, 0.99), 2),
            mean_ms=round(sum(latencies) / completed, 2),
            max_ms=round(latencies[-1], 2),
        )
    return entry


def run_serving_bench(
    offered_loads: Sequence[float] = (300.0, 600.0),
    lane_counts: Sequence[int] = (4,),
    policies: Sequence[str] = ("wave", "continuous"),
    requests: int = 150,
    seed: int = 7,
    timeout_ms: Optional[float] = None,
) -> Dict[str, object]:
    """Throughput vs latency across offered loads, lane counts, policies.

    Returns a JSON-able report with one entry per configuration plus a
    paired wave-vs-continuous p99 comparison per (lanes, load) point.
    """
    dataset, model, rules, fallback, prompts = _build_setting(seed)

    # Warm pass outside timing: touch every code path once.
    warm = JitEnforcer(
        model, rules, dataset.config, EnforcerConfig(seed=3),
        fallback_rules=fallback,
    )
    for prompt in prompts[:4]:
        warm.impute_record(prompt)

    rng = np.random.default_rng(seed)
    schedules = {
        rate: np.cumsum(rng.exponential(1.0 / rate, size=requests)).tolist()
        for rate in offered_loads
    }

    configs: List[Dict[str, object]] = []
    comparisons: List[Dict[str, object]] = []
    for lanes in lane_counts:
        for rate in offered_loads:
            by_policy: Dict[str, Dict[str, object]] = {}
            for policy in policies:
                entry = _run_one(
                    model,
                    rules,
                    fallback,
                    dataset.config,
                    prompts,
                    schedules[rate],
                    lanes=lanes,
                    policy=policy,
                    queue_depth=max(64, requests),
                    timeout_ms=timeout_ms,
                )
                entry["offered_rps"] = rate
                configs.append(entry)
                by_policy[policy] = entry
            if "wave" in by_policy and "continuous" in by_policy:
                wave_p99 = by_policy["wave"].get("p99_ms")
                cont_p99 = by_policy["continuous"].get("p99_ms")
                comparisons.append(
                    {
                        "lanes": lanes,
                        "offered_rps": rate,
                        "wave_p99_ms": wave_p99,
                        "continuous_p99_ms": cont_p99,
                        "continuous_wins_p99": (
                            wave_p99 is not None
                            and cont_p99 is not None
                            and cont_p99 < wave_p99
                        ),
                    }
                )
    return {
        "workload": f"cyclic-impute-{len(prompts)}",
        "requests": requests,
        "seed": seed,
        "timeout_ms": timeout_ms,
        "configs": configs,
        "comparisons": comparisons,
    }


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table of a :func:`run_serving_bench` report."""
    lines = [
        f"Serving bench: {report['workload']}, "
        f"{report['requests']} open-loop Poisson requests per config",
        "",
        f"{'lanes':>5s} {'load rps':>9s} {'policy':>11s} {'done':>5s} "
        f"{'rej':>4s} {'thr rps':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'occup':>6s}",
    ]
    for entry in report["configs"]:
        lines.append(
            f"{entry['lanes']:>5d} {entry['offered_rps']:>9.1f} "
            f"{entry['policy']:>11s} {entry['completed']:>5d} "
            f"{entry['rejected']:>4d} {entry['throughput_rps']:>8.1f} "
            f"{entry.get('p50_ms', float('nan')):>8.1f} "
            f"{entry.get('p99_ms', float('nan')):>8.1f} "
            f"{entry['lane_occupancy']:>6.2f}"
        )
    if report["comparisons"]:
        lines.append("")
        for cmp in report["comparisons"]:
            verdict = "WIN" if cmp["continuous_wins_p99"] else "loss"
            lines.append(
                f"continuous vs wave @ lanes={cmp['lanes']} "
                f"load={cmp['offered_rps']:.0f}rps: "
                f"p99 {cmp['continuous_p99_ms']} vs {cmp['wave_p99_ms']} ms "
                f"[{verdict}]"
            )
    return "\n".join(lines)
