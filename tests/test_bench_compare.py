"""The perf-regression gate: tolerance bands and exit-code semantics."""

import copy
import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "bench_compare.py"

_spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


SERVING = {
    "workload": "cyclic-impute-8",
    "requests": 60,
    "seed": 7,
    "configs": [{
        "lanes": 4, "policy": "wave", "offered_rps": 100.0, "requests": 60,
        "completed": 60, "failed": 0, "expired": 0,
        "throughput_rps": 100.0, "p50_ms": 2.0, "p99_ms": 8.0,
        "mean_ms": 3.0,
    }],
    "worker_pool": {
        "configs": [{
            "workers": 2, "lanes_per_worker": 2, "offered_rps": 100.0,
            "requests": 60, "failed": 0, "units_lost": 0,
            "throughput_rps": 90.0, "p50_ms": 20.0, "p99_ms": 50.0,
            "mean_ms": 25.0,
        }],
    },
}

STREAM = {
    "config": {"records": 100, "seed": 7},
    "throughput": {
        "emitted": 100, "emitted_per_sec": 200.0,
        "lag_p50_ms": 3.0, "lag_p99_ms": 40.0,
    },
    "checks": {"replay_parity": True, "boundary_violations": 0,
               "observational_deviations": 0},
    "memory": {"bounded": True},
}


def _run(baseline, candidate, tmp_path, *extra):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(baseline))
    cand.write_text(json.dumps(candidate))
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline", str(base),
         "--candidate", str(cand), *extra],
        capture_output=True, text=True,
    )


class TestExitCodes:
    def test_identity_serving_passes(self, tmp_path):
        proc = _run(SERVING, SERVING, tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no regressions" in proc.stdout

    def test_identity_stream_passes(self, tmp_path):
        assert _run(STREAM, STREAM, tmp_path).returncode == 0

    def test_committed_snapshots_pass_against_themselves(self):
        for name in ("BENCH_serving.json", "BENCH_stream.json"):
            proc = subprocess.run(
                [sys.executable, str(SCRIPT),
                 "--baseline", str(REPO / name),
                 "--candidate", str(REPO / name)],
                capture_output=True, text=True,
            )
            assert proc.returncode == 0, f"{name}: {proc.stdout}"

    def test_degraded_latency_fails(self, tmp_path):
        degraded = copy.deepcopy(SERVING)
        degraded["configs"][0]["p99_ms"] = 30.0
        proc = _run(SERVING, degraded, tmp_path)
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout and "p99_ms" in proc.stdout

    def test_degraded_throughput_fails(self, tmp_path):
        degraded = copy.deepcopy(STREAM)
        degraded["throughput"]["emitted_per_sec"] = 100.0
        assert _run(STREAM, degraded, tmp_path).returncode == 1

    def test_flipped_parity_fails(self, tmp_path):
        degraded = copy.deepcopy(STREAM)
        degraded["checks"]["replay_parity"] = False
        proc = _run(STREAM, degraded, tmp_path)
        assert proc.returncode == 1
        assert "replay_parity" in proc.stdout

    def test_lost_units_fail(self, tmp_path):
        degraded = copy.deepcopy(SERVING)
        degraded["worker_pool"]["configs"][0]["units_lost"] = 1
        assert _run(SERVING, degraded, tmp_path).returncode == 1

    def test_mismatched_kinds_are_an_error(self, tmp_path):
        proc = _run(SERVING, STREAM, tmp_path)
        assert proc.returncode != 0
        assert "cannot compare" in proc.stderr

    def test_unreadable_candidate_is_an_error(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(SERVING))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--baseline", str(base),
             "--candidate", str(tmp_path / "missing.json")],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0


class TestToleranceBands:
    def test_noise_floor_forgives_small_absolute_growth(self):
        base = copy.deepcopy(SERVING)
        cand = copy.deepcopy(SERVING)
        # +1 ms on a 2 ms p50 is 50% relative but under the 2 ms floor.
        cand["configs"][0]["p50_ms"] = 3.0
        findings = bench_compare.compare(base, cand)
        assert not any(f.regression for f in findings)

    def test_relative_band_forgives_proportional_growth(self):
        base = copy.deepcopy(SERVING)
        cand = copy.deepcopy(SERVING)
        cand["worker_pool"]["configs"][0]["p99_ms"] = 60.0  # +20% < 25%
        findings = bench_compare.compare(base, cand)
        assert not any(f.regression for f in findings)

    def test_both_bands_exceeded_is_a_regression(self):
        base = copy.deepcopy(SERVING)
        cand = copy.deepcopy(SERVING)
        cand["worker_pool"]["configs"][0]["p99_ms"] = 75.0  # +50% and +25ms
        findings = bench_compare.compare(base, cand)
        assert any(
            f.regression and f.metric == "p99_ms" for f in findings
        )

    def test_tighter_tolerance_flag_trips_the_gate(self, tmp_path):
        cand = copy.deepcopy(SERVING)
        cand["worker_pool"]["configs"][0]["p99_ms"] = 60.0
        assert _run(SERVING, cand, tmp_path).returncode == 0
        assert _run(
            SERVING, cand, tmp_path, "--tolerance", "0.1"
        ).returncode == 1

    def test_missing_candidate_config_reports_but_passes(self):
        base = copy.deepcopy(SERVING)
        base["configs"].append(dict(
            base["configs"][0], offered_rps=300.0
        ))
        findings = bench_compare.compare(base, SERVING)
        missing = [f for f in findings if f.candidate == "missing"]
        assert missing and not any(f.regression for f in missing)

    def test_no_overlap_at_all_is_an_error(self):
        base = copy.deepcopy(SERVING)
        base["configs"][0]["lanes"] = 99
        base["worker_pool"]["configs"][0]["workers"] = 99
        with pytest.raises(SystemExit, match="no candidate config"):
            bench_compare.compare(base, SERVING)
