"""Fault-injection harness for chaos-testing the JIT enforcement loop.

See :mod:`repro.testing.faults` for the wrappers and configuration.
"""

from .faults import (
    CrashingLM,
    FaultConfig,
    FaultInjector,
    FaultStats,
    FaultyLM,
    FaultyOracle,
    FlakyStreamSource,
    StallingOracle,
    kill_worker,
    resume_worker,
    stall_worker,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FaultyLM",
    "FaultyOracle",
    "CrashingLM",
    "StallingOracle",
    "FlakyStreamSource",
    "kill_worker",
    "stall_worker",
    "resume_worker",
]
