"""Chaos harness: kill workers mid-run and prove nothing wrong escapes.

The fault-tolerance acceptance test behind ``python -m repro.cli chaos``
and the CI ``chaos-smoke`` job.  One run:

1. start a :class:`~repro.serve.supervisor.WorkerPool` and wait for every
   worker to heartbeat;
2. drive a fixed, seeded imputation workload through it;
3. once ``kill_fraction`` of the requests have completed, SIGKILL one
   (or more) worker processes -- no warning, no cleanup, exactly what the
   OOM killer does;
4. wait for the rest, then audit three properties:

   * **byte parity** -- every completed request's records are identical to
     what a fresh serial :class:`~repro.core.enforcer.JitEnforcer` at the
     same seed produces.  Crash replay must be invisible in the bytes;
   * **availability** -- completed / accepted >= ``availability_target``
     (shed/backpressured submissions are excluded: refusing loudly is
     correct behavior, losing accepted work is not);
   * **reconvergence** -- the supervisor restarts its way back to the full
     configured worker count within ``reconverge_timeout``.

The report is JSON-able; ``passed`` is the single gate CI checks.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core import EnforcerConfig, JitEnforcer
from ..errors import QueueFull, WorkerPoolUnavailable
from ..testing.faults import kill_worker
from .harness import _build_setting, _clear_process_memos
from .supervisor import WorkerPool
from .types import DONE, RequestSpec, ServeRequest

__all__ = ["run_chaos", "format_chaos_report"]


def run_chaos(
    workers: int = 4,
    lanes_per_worker: int = 2,
    requests: int = 24,
    base_seed: int = 500,
    seed: int = 5,
    kill_fraction: float = 0.25,
    kill_slots: Sequence[int] = (0,),
    availability_target: float = 0.99,
    liveness_timeout: float = 1.5,
    backoff_base: float = 0.1,
    reconverge_timeout: float = 30.0,
    wait_timeout: float = 120.0,
) -> Dict[str, object]:
    """One chaos run (see module docstring); returns the audit report."""
    dataset, model, rules, fallback, prompts = _build_setting(seed)
    _clear_process_memos(model)

    def factory() -> JitEnforcer:
        return JitEnforcer(
            model, rules, dataset.config, EnforcerConfig(seed=13),
            fallback_rules=fallback,
        )

    def reference(request_seed: int, coarse) -> List[Dict[str, int]]:
        serial = JitEnforcer(
            model, rules, dataset.config, EnforcerConfig(seed=request_seed),
            fallback_rules=fallback,
        )
        return [dict(serial.impute_record(coarse).values)]

    started = time.monotonic()
    pool = WorkerPool(
        factory,
        workers=workers,
        lanes_per_worker=lanes_per_worker,
        queue_depth=max(64, requests),
        liveness_timeout=liveness_timeout,
        backoff_base=backoff_base,
    )
    pool.start()
    try:
        _wait_for_healthy(pool, workers, timeout=60.0)

        handles: List[Optional[ServeRequest]] = []
        shed = rejected = 0
        specs = []
        for index in range(requests):
            coarse = prompts[index % len(prompts)]
            specs.append((base_seed + index, coarse))
            try:
                handles.append(pool.submit(RequestSpec(
                    "impute", coarse=coarse, seed=base_seed + index
                )))
            except WorkerPoolUnavailable:
                shed += 1
                handles.append(None)
            except QueueFull:
                rejected += 1
                handles.append(None)

        # Let the run get properly underway, then pull the rug.
        kill_threshold = max(1, int(requests * kill_fraction))
        killed_pids = []
        deadline = time.monotonic() + wait_timeout
        while time.monotonic() < deadline:
            done = sum(1 for h in handles if h is not None and h.done)
            if done >= kill_threshold:
                break
            time.sleep(0.01)
        pids = pool.worker_pids()
        for slot in kill_slots:
            pid = pids[slot % len(pids)]
            if pid is not None:
                kill_worker(pid)
                killed_pids.append(pid)

        for handle in handles:
            if handle is not None:
                handle.wait(timeout=wait_timeout)

        accepted = [h for h in handles if h is not None]
        completed = [h for h in accepted if h.status == DONE]
        failed = [h for h in accepted if h.done and h.status != DONE]
        availability = (
            len(completed) / len(accepted) if accepted else 1.0
        )

        mismatches = []
        for index, handle in enumerate(handles):
            if handle is None or handle.status != DONE:
                continue
            request_seed, coarse = specs[index]
            expected = reference(request_seed, coarse)
            got = handle.result(timeout=1).records
            if got != expected:
                mismatches.append({
                    "request_seed": request_seed,
                    "expected": expected,
                    "got": got,
                })

        reconverged = _wait_for_healthy(
            pool, workers, timeout=reconverge_timeout
        )
        supervision = pool.metrics()["supervision"]
        passed = (
            bool(killed_pids)
            and supervision["worker_crashes"] >= len(killed_pids)
            and availability >= availability_target
            and not mismatches
            and reconverged
        )
        return {
            "workers": workers,
            "lanes_per_worker": lanes_per_worker,
            "requests": requests,
            "base_seed": base_seed,
            "seed": seed,
            "killed_pids": killed_pids,
            "accepted": len(accepted),
            "completed": len(completed),
            "failed": len(failed),
            "shed": shed,
            "rejected": rejected,
            "availability": round(availability, 4),
            "availability_target": availability_target,
            "parity_mismatches": mismatches,
            "reconverged": reconverged,
            "worker_crashes": supervision["worker_crashes"],
            "worker_restarts": supervision["worker_restarts"],
            "units_retried": supervision["units_retried"],
            "units_lost": supervision["units_lost"],
            "duration_s": round(time.monotonic() - started, 3),
            "passed": passed,
        }
    finally:
        pool.stop(drain=True, timeout=60)


def _wait_for_healthy(
    pool: WorkerPool, target: int, timeout: float
) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.health()["workers_healthy"] >= target:
            return True
        time.sleep(0.05)
    return False


def format_chaos_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_chaos` report."""
    verdict = "PASS" if report["passed"] else "FAIL"
    lines = [
        f"Chaos run [{verdict}]: {report['workers']} workers x "
        f"{report['lanes_per_worker']} lanes, {report['requests']} requests, "
        f"killed pids {report['killed_pids']}",
        f"  accepted={report['accepted']} completed={report['completed']} "
        f"failed={report['failed']} shed={report['shed']} "
        f"rejected={report['rejected']}",
        f"  availability={report['availability']:.4f} "
        f"(target {report['availability_target']:.2f})",
        f"  parity mismatches={len(report['parity_mismatches'])} "
        f"reconverged={report['reconverged']}",
        f"  crashes={report['worker_crashes']} "
        f"restarts={report['worker_restarts']} "
        f"retried={report['units_retried']} lost={report['units_lost']} "
        f"in {report['duration_s']}s",
    ]
    return "\n".join(lines)
