"""NetNomos-style rule mining from training telemetry.

The paper sources its rule sets (716 for imputation, 255 for synthesis) from
NetNomos [23], which mines logic rules that hold on training data.  This
module reproduces the rule *shapes* that pipeline emits over our telemetry
schema:

* bound rules            ``v >= lo``, ``v <= hi``
* octagonal difference   ``u - v <= c``, ``u + v <= c`` (and lower bounds)
* scaled-ratio rules     ``u <= a*v + b`` for small integer ``a``
* exact identities       ``u == sum(fine)`` (detected, not assumed)
* conditional bounds     ``a >= k  =>  v <= c`` (and >=, == 0 forms)
* burst implications     ``a >= k  =>  max_t I_t >= m`` (Or-expansion)

Every emitted rule holds on *all* training assignments by construction
(bounds are exact extrema over the data, with optional slack widening), so
the mined set is consistent -- precisely the property the enforcer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..smt import Eq, Ge, Implies, Le, LinExpr, Or
from .dsl import Rule, RuleSet, var

__all__ = ["MinerOptions", "mine_rules"]


@dataclass(frozen=True)
class MinerOptions:
    """Which rule families to mine and how aggressively."""

    bounds: bool = True
    octagon: bool = True
    ratios: bool = True
    identities: bool = True
    conditionals: bool = True
    burst_implications: bool = True
    ratio_coefficients: Tuple[int, ...] = (2, 3, 4)
    threshold_quantiles: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9)
    min_condition_support: int = 5
    slack: int = 0  # widen every mined numeric bound by this much
    tightness_margin: int = 1  # conditional bounds must beat global by this


def _columns(
    assignments: Sequence[Mapping[str, int]], variables: Sequence[str]
) -> Dict[str, np.ndarray]:
    return {
        name: np.array([a[name] for a in assignments], dtype=np.int64)
        for name in variables
    }


def mine_rules(
    assignments: Sequence[Mapping[str, int]],
    variables: Sequence[str],
    options: Optional[MinerOptions] = None,
    fine_variables: Sequence[str] = (),
    name: str = "mined",
) -> RuleSet:
    """Mine a rule set that holds on every training assignment.

    ``fine_variables`` (a subset of ``variables``) enables the burst
    implication family over the fine-grained series.
    """
    if not assignments:
        raise ValueError("cannot mine rules from an empty dataset")
    options = options or MinerOptions()
    columns = _columns(assignments, variables)
    rules = RuleSet(name=name)
    slack = options.slack

    box: Dict[str, Tuple[int, int]] = {
        v: (int(col.min()), int(col.max())) for v, col in columns.items()
    }

    if options.bounds:
        _mine_bounds(rules, box, slack)
    if options.identities:
        _mine_identities(rules, columns, variables, fine_variables)
    if options.octagon:
        _mine_octagon(rules, columns, variables, box, slack)
    if options.ratios:
        _mine_ratios(rules, columns, variables, box, slack, options)
    if options.conditionals:
        _mine_conditionals(rules, columns, variables, box, options)
    if options.burst_implications and fine_variables:
        _mine_burst_implications(rules, columns, variables, fine_variables, options)
    return rules


def _mine_bounds(rules: RuleSet, box, slack: int) -> None:
    for name, (low, high) in box.items():
        rules.add(
            Rule(
                f"lo[{name}]",
                Ge(var(name), low - slack),
                kind="bound",
                source="mined",
                description=f"{name} >= {low - slack}",
            )
        )
        rules.add(
            Rule(
                f"hi[{name}]",
                Le(var(name), high + slack),
                kind="bound",
                source="mined",
                description=f"{name} <= {high + slack}",
            )
        )


def _mine_identities(rules, columns, variables, fine_variables) -> None:
    """Detect exact ``coarse == sum(fine)`` identities."""
    if not fine_variables:
        return
    fine_sum = sum(columns[v] for v in fine_variables)
    for name in variables:
        if name in fine_variables:
            continue
        if np.array_equal(columns[name], fine_sum):
            expr = LinExpr({})
            for fine in fine_variables:
                expr = expr + var(fine)
            rules.add(
                Rule(
                    f"id[{name}=sum]",
                    Eq(expr, var(name)),
                    kind="sum",
                    source="mined",
                    description=f"{name} == sum of fine values",
                )
            )


def _mine_octagon(rules, columns, variables, box, slack: int) -> None:
    """Difference/sum bounds tighter than what the box already implies."""
    for i, u in enumerate(variables):
        for v in variables[i + 1 :]:
            cu, cv = columns[u], columns[v]
            (ulo, uhi), (vlo, vhi) = box[u], box[v]
            pairs = (
                ("diff", cu - cv, var(u) - var(v), uhi - vlo, ulo - vhi),
                ("sum", cu + cv, var(u) + var(v), uhi + vhi, ulo + vlo),
            )
            for tag, data, expr, box_hi, box_lo in pairs:
                hi, lo = int(data.max()), int(data.min())
                if hi < box_hi:
                    rules.add(
                        Rule(
                            f"oct[{u}{'-' if tag == 'diff' else '+'}{v}<=]",
                            Le(expr, hi + slack),
                            kind="octagon",
                            source="mined",
                            description=f"{u} {tag} {v} <= {hi + slack}",
                        )
                    )
                if lo > box_lo:
                    rules.add(
                        Rule(
                            f"oct[{u}{'-' if tag == 'diff' else '+'}{v}>=]",
                            Ge(expr, lo - slack),
                            kind="octagon",
                            source="mined",
                            description=f"{u} {tag} {v} >= {lo - slack}",
                        )
                    )


def _mine_ratios(rules, columns, variables, box, slack: int, options) -> None:
    """Scaled bounds ``u <= a*v + b`` that beat the box bound on u."""
    for u in variables:
        for v in variables:
            if u == v:
                continue
            for a in options.ratio_coefficients:
                data = columns[u] - a * columns[v]
                b = int(data.max())
                # Informative only if it can beat the box upper bound of u
                # somewhere in v's observed range.
                if a * box[v][0] + b < box[u][1]:
                    rules.add(
                        Rule(
                            f"ratio[{u}<={a}{v}]",
                            Le(var(u) - a * var(v), b + slack),
                            kind="ratio",
                            source="mined",
                            description=f"{u} <= {a}*{v} + {b + slack}",
                        )
                    )


def _thresholds(column: np.ndarray, quantiles) -> List[int]:
    values = sorted(
        {int(np.quantile(column, q, method="nearest")) for q in quantiles}
    )
    return values


def _mine_conditionals(rules, columns, variables, box, options) -> None:
    """Conditional bounds: (a >= k) => v <= c / v >= c, when tighter."""
    margin = options.tightness_margin
    for a in variables:
        thresholds = _thresholds(columns[a], options.threshold_quantiles)
        for k in thresholds:
            mask = columns[a] >= k
            support = int(mask.sum())
            if support < options.min_condition_support or mask.all():
                continue
            antecedent = Ge(var(a), k)
            for v in variables:
                if v == a:
                    continue
                sub = columns[v][mask]
                sub_hi, sub_lo = int(sub.max()), int(sub.min())
                if sub_hi <= box[v][1] - margin:
                    rules.add(
                        Rule(
                            f"cond[{a}>={k}:{v}<={sub_hi}]",
                            Implies(antecedent, Le(var(v), sub_hi + options.slack)),
                            kind="conditional",
                            source="mined",
                            description=f"{a} >= {k} implies {v} <= {sub_hi}",
                        )
                    )
                if sub_lo >= box[v][0] + margin:
                    rules.add(
                        Rule(
                            f"cond[{a}>={k}:{v}>={sub_lo}]",
                            Implies(antecedent, Ge(var(v), sub_lo - options.slack)),
                            kind="conditional",
                            source="mined",
                            description=f"{a} >= {k} implies {v} >= {sub_lo}",
                        )
                    )
        # Zero-propagation form: a == 0 => v == 0 (e.g. cong=0 => retx=0).
        zero_mask = columns[a] == 0
        if (
            int(zero_mask.sum()) >= options.min_condition_support
            and not zero_mask.all()
        ):
            for v in variables:
                if v == a or box[v][0] < 0:
                    continue
                sub = columns[v][zero_mask]
                if sub.max() == 0 and box[v][1] > 0:
                    rules.add(
                        Rule(
                            f"zero[{a}=0:{v}=0]",
                            Implies(Le(var(a), 0), Le(var(v), 0)),
                            kind="conditional",
                            source="mined",
                            description=f"{a} == 0 implies {v} == 0",
                        )
                    )


def _mine_burst_implications(
    rules, columns, variables, fine_variables, options
) -> None:
    """(a >= k) => max_t I_t >= m: the mined generalization of R3."""
    fine_matrix = np.stack([columns[v] for v in fine_variables], axis=1)
    max_fine = fine_matrix.max(axis=1)
    global_min_max = int(max_fine.min())
    for a in variables:
        if a in fine_variables:
            continue
        for k in _thresholds(columns[a], options.threshold_quantiles):
            if k <= 0:
                continue
            mask = columns[a] >= k
            support = int(mask.sum())
            if support < options.min_condition_support or mask.all():
                continue
            m = int(max_fine[mask].min())
            if m <= global_min_max + options.tightness_margin or m <= 0:
                continue
            burst = Or(*[Ge(var(v), m - options.slack) for v in fine_variables])
            rules.add(
                Rule(
                    f"burst[{a}>={k}:max>={m}]",
                    Implies(Ge(var(a), k), burst),
                    kind="implication",
                    source="mined",
                    description=f"{a} >= {k} implies max fine >= {m}",
                )
            )
