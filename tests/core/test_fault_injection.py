"""Chaos tests: the enforcement loop under injected model/solver faults.

The robustness contract under test: with faults firing at every seam
(NaN/zero model distributions, spurious UNKNOWN confirmations, forced dead
ends, budget exhaustion), the pipeline still completes every record with
zero unhandled exceptions, and every emitted record is either proven
rule-compliant or explicitly flagged degraded.
"""

import numpy as np
import pytest

from repro.core import (
    EnforcementEngine,
    EnforcerConfig,
    JitEnforcer,
    LADDER_STAGES,
)
from repro.data import build_dataset
from repro.errors import DeadEnd
from repro.lm import NgramLM
from repro.lm.sampler import sample_tokens
from repro.rules import domain_bound_rules, paper_rules
from repro.smt import SolverBudget
from repro.testing import (
    FaultConfig,
    FaultInjector,
    FaultyLM,
    FaultyOracle,
)


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=2
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model, paper_rules(dataset.config)


def _chaos_enforcer(dataset, model, rules, fault_config, enforcer_seed=0):
    injector = FaultInjector(fault_config)
    enforcer = JitEnforcer(
        FaultyLM(model, injector),
        rules,
        dataset.config,
        EnforcerConfig(
            seed=enforcer_seed,
            budget=SolverBudget.default(),
            max_budget_retries=1,
        ),
        fallback_rules=[domain_bound_rules(dataset.config)],
        oracle_wrapper=lambda oracle: FaultyOracle(oracle, injector),
    )
    return enforcer, injector


def _run_chaos(dataset, enforcer, count=10):
    outcomes = []
    for window in dataset.test_windows()[:count]:
        outcome = enforcer.impute_record(window.coarse())
        # Contract: compliant or explicitly flagged, never silently wrong.
        assert outcome.compliant or outcome.degraded
        assert outcome.stage in LADDER_STAGES
        for name, value in window.coarse().items():
            assert outcome.values[name] == value  # prompt echo survives
        outcomes.append(outcome)
    return outcomes


class TestChaosCompliance:
    def test_acceptance_rates(self, setting):
        """The ISSUE acceptance bar: >=20% UNKNOWNs, >=5% dead ends."""
        dataset, model, rules = setting
        enforcer, injector = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(
                seed=7,
                nan_logits=0.03,
                zero_logits=0.05,
                spurious_unknown=0.25,
                forced_dead_end=0.08,
                budget_exhaustion=0.10,
            ),
        )
        _run_chaos(dataset, enforcer, count=10)
        trace = enforcer.trace
        assert trace.records == 10
        # Every fault kind actually fired (the run exercised the seams).
        for kind in ("spurious_unknown", "budget_exhaustion",
                     "forced_dead_end"):
            assert injector.stats.fired.get(kind, 0) > 0, kind
        # Every record is accounted to exactly one ladder stage.
        assert sum(trace.ladder.values()) == trace.records
        # The faults left visible footprints in the trace.
        assert trace.unknown_confirms > 0
        assert trace.budget_exhaustions > 0

    @pytest.mark.parametrize("rate", [0.0, 0.15, 0.5])
    def test_fault_rate_sweep(self, setting, rate):
        dataset, model, rules = setting
        enforcer, _ = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(
                seed=11,
                spurious_unknown=rate,
                forced_dead_end=rate / 2,
                budget_exhaustion=rate / 2,
            ),
        )
        outcomes = _run_chaos(dataset, enforcer, count=6)
        if rate == 0.0:
            # No faults: nothing may degrade.
            assert enforcer.trace.degraded_records == 0
            assert all(o.stage == "smt-confirm" for o in outcomes)

    def test_heavy_lm_corruption(self, setting):
        """NaN/zero distributions surface as counted dead ends, not NaNs."""
        dataset, model, rules = setting
        enforcer, injector = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(seed=3, nan_logits=0.2, zero_logits=0.2),
        )
        _run_chaos(dataset, enforcer, count=6)
        assert injector.stats.fired.get("zero_logits", 0) > 0
        assert enforcer.trace.dead_ends > 0
        # Despite the corruption the solver path still confirms records.
        assert enforcer.trace.ladder.get("smt-confirm", 0) > 0

    def test_total_solver_outage_still_completes(self, setting):
        """budget_exhaustion=1.0: every solver entry point fails, yet
        generation completes via solver-free ladder stages."""
        dataset, model, rules = setting
        enforcer, _ = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(seed=5, budget_exhaustion=1.0),
        )
        outcomes = _run_chaos(dataset, enforcer, count=4)
        assert all(o.degraded for o in outcomes)
        assert enforcer.trace.degraded_records == 4


class TestDegradationReport:
    def test_batch_report_aggregates_outcomes(self, setting):
        from repro.core import degradation_report

        dataset, model, rules = setting
        enforcer, _ = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(seed=17, spurious_unknown=0.3, budget_exhaustion=0.1),
        )
        outcomes = _run_chaos(dataset, enforcer, count=6)
        report = degradation_report(outcomes)
        assert report["records"] == 6
        assert report["all_compliant_or_flagged"] is True
        assert sum(report["stages"].values()) == 6
        assert report["degraded"] == enforcer.trace.degraded_records


class TestChaosDeterminism:
    def test_same_seeds_same_trace(self, setting):
        """Same fault seed + enforcer seed + budget -> identical ladder,
        counters, deterministic solver work, and records."""
        dataset, model, rules = setting
        config = FaultConfig(
            seed=13,
            nan_logits=0.02,
            zero_logits=0.04,
            spurious_unknown=0.2,
            forced_dead_end=0.06,
            budget_exhaustion=0.08,
        )
        runs = []
        for _ in range(2):
            enforcer, injector = _chaos_enforcer(dataset, model, rules, config)
            outcomes = _run_chaos(dataset, enforcer, count=8)
            trace = enforcer.trace
            runs.append({
                "values": [o.values for o in outcomes],
                "stages": [o.stage for o in outcomes],
                "ladder": dict(trace.ladder),
                "degraded": trace.degraded_records,
                "exhaustions": trace.budget_exhaustions,
                "retries": trace.budget_retries,
                "dead_ends": trace.dead_ends,
                "unknowns": trace.unknown_confirms,
                "solver_work": dict(trace.solver_work),
                "faults": dict(injector.stats.fired),
            })
        assert runs[0] == runs[1]


class TestChaosUnderEngine:
    """The same robustness contract, batched: faults fire inside lanes of a
    lock-step engine and must stay contained to their own slot."""

    def test_batched_chaos_contract(self, setting):
        dataset, model, rules = setting
        enforcer, injector = _chaos_enforcer(
            dataset, model, rules,
            FaultConfig(
                seed=7,
                nan_logits=0.03,
                zero_logits=0.05,
                spurious_unknown=0.25,
                forced_dead_end=0.08,
                budget_exhaustion=0.10,
            ),
        )
        engine = EnforcementEngine(enforcer, batch_size=4)
        windows = dataset.test_windows()[:12]
        results = engine.impute_many(
            [w.coarse() for w in windows], return_exceptions=True
        )
        for window, outcome in zip(windows, results):
            # Zero unhandled exceptions: the ladder absorbs every fault.
            assert not isinstance(outcome, BaseException)
            assert outcome.compliant or outcome.degraded
            assert outcome.stage in LADDER_STAGES
            for name, value in window.coarse().items():
                assert outcome.values[name] == value
        assert sum(injector.stats.fired.values()) > 0
        assert sum(enforcer.trace.ladder.values()) == len(windows)

    def test_total_solver_outage_under_engine(self, setting):
        dataset, model, rules = setting
        enforcer, _ = _chaos_enforcer(
            dataset, model, rules, FaultConfig(seed=5, budget_exhaustion=1.0)
        )
        engine = EnforcementEngine(enforcer, batch_size=4)
        results = engine.impute_many(
            [w.coarse() for w in dataset.test_windows()[:8]],
            return_exceptions=True,
        )
        assert all(not isinstance(o, BaseException) for o in results)
        assert all(o.degraded for o in results)
        assert engine.stats.completed == 8

    def test_crashing_slot_never_perturbs_batch_mates(self, setting):
        """A hard oracle crash in one session leaves every batch-mate
        byte-identical to a fault-free run over the same submission list."""
        dataset, model, rules = setting
        prompts = [w.coarse() for w in dataset.test_windows()[:8]]
        poison = {"total": 77, "cong": 1, "retx": 0, "egr": 80}
        prompts[3] = poison

        class _PoisonOracle:
            def __init__(self, inner):
                self._inner = inner

            def begin_record(self, fixed=None):
                if fixed and all(
                    fixed.get(k) == v for k, v in poison.items()
                ) and len(fixed) == len(poison):
                    raise RuntimeError("injected oracle crash")
                return self._inner.begin_record(fixed)

            @property
            def interval(self):
                # The optimistic phase reaches the hybrid tier's interval
                # sub-oracle directly; poison that seam too (mirrors
                # FaultyOracle's nested wrapping).
                return _PoisonOracle(self._inner.interval)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        def build(wrapper=None):
            return JitEnforcer(
                model,
                rules,
                dataset.config,
                EnforcerConfig(seed=21),
                fallback_rules=[domain_bound_rules(dataset.config)],
                oracle_wrapper=wrapper,
            )

        clean_engine = EnforcementEngine(build(), batch_size=4)
        clean = clean_engine.impute_many(prompts, return_exceptions=True)
        poisoned_engine = EnforcementEngine(
            build(lambda oracle: _PoisonOracle(oracle)), batch_size=4
        )
        poisoned = poisoned_engine.impute_many(prompts, return_exceptions=True)

        assert isinstance(poisoned[3], RuntimeError)
        for index in range(len(prompts)):
            if index == 3:
                continue
            assert poisoned[index].values == clean[index].values
            assert poisoned[index].stage == clean[index].stage
        assert poisoned_engine.stats.failed == 1
        assert poisoned_engine.stats.completed == len(prompts) - 1


class TestFaultHarness:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(spurious_unknown=1.5)
        with pytest.raises(ValueError):
            FaultConfig(nan_logits=-0.1)

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultConfig(seed=0))
        assert not any(
            injector.fire(kind, 0.0) for kind in ("a", "b", "c")
        )
        assert injector.stats.total() == 0

    def test_faulty_lm_nan_handled_by_sampler(self, setting):
        """A NaN distribution must raise a typed DeadEnd, not emit NaN."""
        dataset, model, _ = setting
        injector = FaultInjector(FaultConfig(seed=0, nan_logits=1.0))
        faulty = FaultyLM(model, injector)
        ids = model.tokenizer.encode("")
        probs = faulty.next_distribution(ids)
        assert np.isnan(probs).any()
        rng = np.random.default_rng(0)
        with pytest.raises(DeadEnd):
            # Masking to {pad} leaves zero finite mass -> dead end.
            sample_tokens(
                faulty, ids, stop_id=model.tokenizer.record_end_id,
                max_new_tokens=3, rng=rng,
                mask_hook=lambda _ids: {model.tokenizer.pad_id},
            )

    def test_wrapped_hybrid_exposes_sub_oracles(self, setting):
        dataset, _, rules = setting
        from repro.core.feasible import HybridOracle
        from repro.data import window_variables
        from repro.data.dataset import variable_bounds

        bounds = variable_bounds(dataset.config)
        injector = FaultInjector(FaultConfig(seed=0))
        wrapped = FaultyOracle(HybridOracle(rules, bounds), injector)
        assert isinstance(wrapped.interval, FaultyOracle)
        assert isinstance(wrapped.smt, FaultyOracle)
        # Interval tiers have no any_model; the wrapper must not grow one.
        from repro.core.feasible import IntervalOracle

        plain = FaultyOracle(IntervalOracle(rules, bounds), injector)
        assert getattr(plain, "any_model", None) is None
