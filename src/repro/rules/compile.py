"""Offline rule-set compiler: rule pack + schema -> compiled mask table.

The live enforcement hot path asks a solver-backed oracle one
``feasible_digits`` query per emitted character.  This module moves that
work offline, SynCode-style: :func:`compile_rules` lowers an active rule
pack plus the record schema (variable bounds) into a
:class:`CompiledMaskTable` whose per-record states answer feasibility by
integer table lookups, marking every state the abstraction cannot prove
exact as IMPRECISE so the oracle falls back to the live pooled solver
(and OracleCache) there and nowhere else.

The symbolic machinery -- the interval-lattice
:class:`~repro.smt.automaton.IntervalAbstraction` and the digit-level
:class:`~repro.smt.automaton.DigitMaskAutomaton` -- lives in
:mod:`repro.smt.automaton`; this module supplies the rule-pack-facing
surface: compilation, the per-record state, hit/fallback accounting, and
the versioned on-disk artifact (format ``lejit-masks/1``) that the rule
registry caches per content fingerprint and ships to pool workers.

Determinism: a compiled table never *invents* answers -- on precise
states its verdicts and interval endpoints provably equal the live
oracles' (see the exactness proof obligation in
:mod:`repro.smt.automaton`), and on imprecise states it answers nothing.
Forced values therefore still come from the canonical feasible minimum,
and records are byte-identical with the table on or off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..smt.automaton import DigitMaskAutomaton, IntervalAbstraction, residual
from ..smt.lincon import LinCon
from ..smt.serialize import formula_from_dict, formula_to_dict
from .dsl import RuleSet
from .io import rules_fingerprint

__all__ = [
    "ARTIFACT_FORMAT",
    "CompiledMaskTable",
    "MaskLookupStats",
    "compile_rules",
    "load_mask_table",
    "save_mask_table",
]

ARTIFACT_FORMAT = "lejit-masks/1"

Bounds = Mapping[str, Tuple[int, int]]


@dataclass
class MaskLookupStats:
    """Shared hit/fallback accounting for every oracle using mask tables.

    ``hits`` counts oracle operations (begins, feasible-set queries,
    confirmations) answered by table lookup; ``fallbacks`` counts
    operations a table was consulted for but could not answer (imprecise
    state); ``live_queries`` counts operations that reached the live
    machinery -- maintained even when no table is configured, so
    mask-off/mask-on benchmark columns are directly comparable.
    ``replays`` counts lazy live-state reconstructions (the first live
    query of a record whose earlier steps were table-only).
    """

    hits: int = 0
    fallbacks: int = 0
    live_queries: int = 0
    replays: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.fallbacks
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Union[int, float]]:
        return {
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "live_queries": self.live_queries,
            "replays": self.replays,
            "hit_rate": round(self.hit_rate(), 6),
        }


class CompiledMaskTable:
    """A rule pack compiled into per-record feasibility lookup state.

    ``open_record(fixed)`` folds the record's fixed values into a copy of
    the compiled base abstraction and returns the per-record state (an
    :class:`IntervalAbstraction`): the oracle then drives it with
    ``assign`` as values are fixed and answers precise queries from
    ``project``/``contains``.  ``automata`` holds the digit-level
    per-prefix masks of each variable's base feasible interval, used to
    prime the transition-system memo so even first-touch per-character
    masks are table hits.
    """

    def __init__(
        self,
        fingerprint: str,
        bounds: Bounds,
        base: IntervalAbstraction,
        automata: Mapping[str, DigitMaskAutomaton],
    ):
        self.fingerprint = fingerprint
        self.bounds = {
            name: (int(low), int(high)) for name, (low, high) in bounds.items()
        }
        self.base = base
        self.automata = dict(automata)

    # -- per-record surface ------------------------------------------------------

    def open_record(self, fixed: Optional[Mapping[str, int]]) -> IntervalAbstraction:
        """The record's initial abstract state with fixed values folded in."""
        state = self.base.copy()
        if not fixed:
            return state
        pins = {name: int(value) for name, value in fixed.items()}
        state._sat = None
        for name, value in pins.items():
            low, high = state.box.get(name, (value, value))
            if not low <= value <= high:
                state.refuted = True
            state.box[name] = (value, value)
        if state.refuted:
            return state
        cons, state.cons = state.cons, []
        for con in cons:
            coeffs = dict(con.items)
            const = con.const
            touched = False
            for name, value in pins.items():
                coeff = coeffs.pop(name, None)
                if coeff is not None:
                    const += coeff * value
                    touched = True
            if touched:
                state.add_lincon(LinCon.make(coeffs, const, con.op))
            else:
                state.cons.append(con)
        guards, state.guards = state.guards, []
        for guard in guards:
            state.add_formula(residual(guard, pins))
        return state

    @property
    def precise_base(self) -> bool:
        return self.base.exact()

    def describe(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "variables": len(self.bounds),
            "constraints": len(self.base.cons),
            "guards": len(self.base.guards),
            "precise_base": self.precise_base,
            "automata": len(self.automata),
            "automaton_states": sum(
                len(auto.states) for auto in self.automata.values()
            ),
        }

    def prime_transition_memo(self, memo: Optional[dict] = None) -> int:
        """Preload compiled digit masks into the transition-system memo.

        Imported lazily: the rules package must stay importable without
        ``repro.core`` (the reverse dependency already exists).
        """
        if memo is None:
            from ..core.transition import DigitTransitionSystem

            memo = DigitTransitionSystem._MEMO
        primed = 0
        for automaton in self.automata.values():
            for key, mask in automaton.memo_items():
                if key not in memo:
                    memo[key] = mask
                    primed += 1
        return primed

    # -- versioned artifact -------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "format": ARTIFACT_FORMAT,
            "fingerprint": self.fingerprint,
            "bounds": {name: list(pair) for name, pair in self.bounds.items()},
            "box": {name: list(pair) for name, pair in self.base.box.items()},
            "cons": [
                {"coeffs": dict(con.items), "const": con.const, "op": con.op}
                for con in self.base.cons
            ],
            "guards": [formula_to_dict(guard) for guard in self.base.guards],
            "refuted": self.base.refuted,
            "inexact": self.base.inexact,
            "precise_base": self.precise_base,
            "automata": {
                name: automaton.to_payload()
                for name, automaton in sorted(self.automata.items())
            },
        }

    @classmethod
    def from_json(
        cls, payload: Mapping, expected_fingerprint: Optional[str] = None
    ) -> "CompiledMaskTable":
        if payload.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"unsupported mask artifact format {payload.get('format')!r} "
                f"(expected {ARTIFACT_FORMAT!r})"
            )
        fingerprint = str(payload["fingerprint"])
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise ValueError(
                f"mask artifact fingerprint {fingerprint} does not match "
                f"the rule set ({expected_fingerprint})"
            )
        base = IntervalAbstraction(
            {name: (int(lo), int(hi)) for name, (lo, hi) in payload["box"].items()},
            [
                LinCon.make(entry["coeffs"], int(entry["const"]), str(entry["op"]))
                for entry in payload.get("cons", [])
            ],
            [formula_from_dict(entry) for entry in payload.get("guards", [])],
            bool(payload.get("refuted", False)),
            bool(payload.get("inexact", False)),
        )
        automata = {
            name: DigitMaskAutomaton.from_payload(entry)
            for name, entry in payload.get("automata", {}).items()
        }
        return cls(
            fingerprint,
            {name: (int(lo), int(hi)) for name, (lo, hi) in payload["bounds"].items()},
            base,
            automata,
        )

    def artifact_bytes(self) -> bytes:
        """Canonical serialized form: byte-identical across recompiles."""
        return (
            json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")


def compile_rules(
    rules: RuleSet,
    bounds: Bounds,
    fingerprint: Optional[str] = None,
    max_automaton_states: int = DigitMaskAutomaton.DEFAULT_MAX_STATES,
) -> CompiledMaskTable:
    """Lower a rule pack plus record schema into a compiled mask table.

    Every rule formula is normalized (NNF + simplification, exactly as
    the live oracles residualize it) and classified: pure-conjunctive
    parts fold into the interval box / constraint list, everything else
    becomes a guard that keeps its states imprecise until record-time
    substitution collapses it.
    """
    fp = fingerprint if fingerprint is not None else rules_fingerprint(rules)
    box = {name: (int(low), int(high)) for name, (low, high) in bounds.items()}
    base = IntervalAbstraction(dict(box))
    for formula in rules.formulas():
        base.add_formula(residual(formula, {}))
    automata: Dict[str, DigitMaskAutomaton] = {}
    if not base.infeasible():
        exact = base.exact()
        for name in sorted(box):
            interval = base.project(name) if exact else base.box.get(name)
            if interval is None:
                continue
            low, high = interval
            if high < max(0, low):
                continue
            automata[name] = DigitMaskAutomaton.compile(
                [(low, high)], max_states=max_automaton_states
            )
    return CompiledMaskTable(fp, box, base, automata)


def save_mask_table(table: CompiledMaskTable, path: Union[str, Path]) -> None:
    Path(path).write_bytes(table.artifact_bytes())


def load_mask_table(
    path: Union[str, Path], expected_fingerprint: Optional[str] = None
) -> CompiledMaskTable:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return CompiledMaskTable.from_json(payload, expected_fingerprint)
