"""Fig. 3 (left): rule-violation rates of every imputation method.

Paper's reported shape: Vanilla GPT-2 ~18% >> Zoom2Net >7% ~= LeJIT-manual
~7% >> Rejection = LeJIT (full rules) = 0%.  We report both the
per-(record,rule) rate and the fraction of records with any violation;
the ordering is the reproduction target, not the absolute numbers.
"""

import pytest

from repro.bench import bench_n, run_imputation
from repro.bench.imputation import format_table

from conftest import write_result


@pytest.mark.benchmark(group="fig3-violations")
def test_fig3_violation_rates(benchmark, context, results_dir):
    count = bench_n()

    def experiment():
        return run_imputation(context, count)

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = ["Fig. 3 (left) - rule violations, audited on the full mined set",
             f"records per method: {count}; mined rules: "
             f"{len(context.imputation_rules)}", ""]
    lines.append(format_table(results))
    write_result(results_dir, "fig3_violations", "\n".join(lines))

    vanilla = results["vanilla"].violation_report.rule_violation_rate
    lejit = results["lejit"].violation_report.rule_violation_rate
    manual = results["lejit-manual"].violation_report.rule_violation_rate
    # The paper's qualitative claims:
    assert lejit == 0.0, "LeJIT with full rules must be fully compliant"
    assert vanilla > 0.0, "unconstrained generation must violate rules"
    assert manual <= vanilla, "manual-rule LeJIT must not be worse than vanilla"
