"""Witten-Bell smoothed character n-gram language model.

A fast, trainable-in-seconds LM backend implementing the same protocol as
the transformer.  The paper's argument is explicitly model-agnostic -- LeJIT
"does not rely on a specific language model architecture" -- and the n-gram
backend lets the 30K-sample benchmark scale of Fig. 3/5 run in pure Python
while exercising the identical enforcement path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .tokenizer import CharTokenizer

__all__ = ["NgramLM"]


class NgramLM:
    """Interpolated (Witten-Bell) n-gram model over token ids."""

    # Bound on the batched-path memo of context -> distribution; contexts
    # are (order-1)-grams over a ~14-char alphabet, so real workloads stay
    # far below this and the memo amounts to a full lookup table.
    _DIST_CACHE_LIMIT = 65536

    def __init__(self, order: int = 6, tokenizer: CharTokenizer | None = None):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.tokenizer = tokenizer or CharTokenizer()
        # counts[k] maps a length-k context tuple to successor Counter.
        self._counts: List[Dict[Tuple[int, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._trained = False
        self._dist_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        # Cache-stats counters matching the transformer's KV cache, so
        # /metrics reports LM cache behaviour uniformly across backends.
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_invalidations = 0

    def fit(self, texts: Iterable[str]) -> "NgramLM":
        """Count n-grams over records (each encoded with BOS, ending in \\n)."""
        for text in texts:
            ids = self.tokenizer.encode(text)
            for position in range(1, len(ids)):
                token = ids[position]
                for k in range(self.order):
                    if position - k < 0:
                        break
                    context = tuple(ids[position - k : position])
                    self._counts[k][context][token] += 1
        self._trained = True
        self._invalidate_cache()
        return self

    def _invalidate_cache(self) -> None:
        if self._dist_cache:
            self._cache_invalidations += 1
        self._dist_cache.clear()

    def _context_key(self, prefix_ids: Sequence[int]) -> Tuple[int, ...]:
        """The distribution depends only on the last ``order - 1`` ids."""
        window = self.order - 1
        return tuple(prefix_ids[-window:]) if window else ()

    def _lookup(self, prefix_ids: Sequence[int]) -> np.ndarray:
        """Memoized context-row lookup shared by both protocol entry points.

        Rows sharing an (order-1)-gram context -- the common case under
        lock-step scheduling, where every lane sits at the same field
        position -- are computed once and reused, bitwise identical to a
        fresh computation.  Bounded; cleared wholesale on overflow and on
        :meth:`fit` (each counts as one invalidation).
        """
        key = self._context_key(prefix_ids)
        cached = self._dist_cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        computed = self._compute_distribution(prefix_ids)
        if len(self._dist_cache) >= self._DIST_CACHE_LIMIT:
            self._invalidate_cache()
        self._dist_cache[key] = computed
        return computed

    def lm_cache_stats(self) -> Dict[str, float]:
        """Hit/miss/invalidation counters in the transformer cache's shape."""
        return {
            "backend": "ngram",
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "invalidations": self._cache_invalidations,
            "entries": len(self._dist_cache),
        }

    def next_distributions(
        self, batch_of_prefix_ids: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Batched protocol: the n-gram analogue of a vectorized forward.

        An n-gram "forward pass" is a table lookup, so the batch win is
        deduplication via the shared :meth:`_lookup` memo.  Each row is
        bitwise identical to what ``next_distribution`` returns.
        """
        out = np.empty(
            (len(batch_of_prefix_ids), self.tokenizer.vocab_size),
            dtype=np.float64,
        )
        for index, prefix in enumerate(batch_of_prefix_ids):
            out[index] = self._lookup(prefix)
        return out

    def next_distribution(self, prefix_ids: Sequence[int]) -> np.ndarray:
        return self._lookup(prefix_ids)

    def _compute_distribution(self, prefix_ids: Sequence[int]) -> np.ndarray:
        if not self._trained:
            raise RuntimeError("NgramLM.fit must be called before sampling")
        vocab = self.tokenizer.vocab_size
        # Order-0 base: unigram with add-one smoothing over non-special ids.
        unigram_counts = self._counts[0][()]
        base = np.ones(vocab, dtype=np.float64)
        base[self.tokenizer.pad_id] = 0.0
        base[self.tokenizer.bos_id] = 0.0
        for token, count in unigram_counts.items():
            base[token] += count
        distribution = base / base.sum()
        # Witten-Bell interpolation from low to high order.
        prefix = list(prefix_ids)
        for k in range(1, self.order):
            if len(prefix) < k:
                break
            context = tuple(prefix[-k:])
            successor = self._counts[k].get(context)
            if not successor:
                continue
            total = sum(successor.values())
            distinct = len(successor)
            weight = total / (total + distinct)
            empirical = np.zeros(vocab, dtype=np.float64)
            for token, count in successor.items():
                empirical[token] = count / total
            distribution = weight * empirical + (1.0 - weight) * distribution
        return distribution

    def perplexity(self, texts: Iterable[str]) -> float:
        """Per-character perplexity over a corpus."""
        log_prob = 0.0
        count = 0
        for text in texts:
            ids = self.tokenizer.encode(text)
            for position in range(1, len(ids)):
                probs = self.next_distribution(ids[:position])
                log_prob += float(np.log(max(probs[ids[position]], 1e-12)))
                count += 1
        if count == 0:
            return float("inf")
        return float(np.exp(-log_prob / count))
