"""Rule-violation audits (the Fig. 3 left / Fig. 5 compliance metric)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..rules.dsl import RuleSet

__all__ = ["ViolationReport", "audit"]


@dataclass
class ViolationReport:
    """Compliance statistics of a batch of records against a rule set."""

    records: int
    rules: int
    violating_records: int  # records breaking >= 1 rule
    total_violations: int  # sum over records of #rules broken
    per_rule: Dict[str, int] = field(default_factory=dict)

    @property
    def record_violation_rate(self) -> float:
        """Fraction of records breaking at least one rule."""
        return self.violating_records / self.records if self.records else 0.0

    @property
    def rule_violation_rate(self) -> float:
        """Average fraction of rules broken per record (the paper's
        headline percentage: 18% for vanilla GPT-2, 0% for LeJIT)."""
        if not self.records or not self.rules:
            return 0.0
        return self.total_violations / (self.records * self.rules)

    def worst_rules(self, top: int = 5) -> List[tuple]:
        ranked = sorted(self.per_rule.items(), key=lambda kv: -kv[1])
        return ranked[:top]


def audit(
    assignments: Sequence[Mapping[str, int]], rules: RuleSet
) -> ViolationReport:
    """Score every record against every rule."""
    per_rule: Dict[str, int] = {}
    violating_records = 0
    total = 0
    for assignment in assignments:
        broken = rules.violations(assignment)
        if broken:
            violating_records += 1
            total += len(broken)
            for rule in broken:
                per_rule[rule.name] = per_rule.get(rule.name, 0) + 1
    return ViolationReport(
        records=len(assignments),
        rules=len(rules),
        violating_records=violating_records,
        total_violations=total,
        per_rule=per_rule,
    )
