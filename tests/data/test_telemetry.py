"""Telemetry coarsening tests: the queue model's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TelemetryConfig, coarsen, window_variables
from repro.data.telemetry import COARSE_FIELDS, fine_field


CONFIG = TelemetryConfig()


def make_windows(fine, initial_queue=0, seed=0):
    rng = np.random.default_rng(seed)
    return coarsen(np.asarray(fine, dtype=np.int64), CONFIG, rng, initial_queue)


class TestSchema:
    def test_window_variables_order(self):
        names = window_variables(3)
        assert names == ("total", "cong", "retx", "egr", "I0", "I1", "I2")

    def test_fine_field(self):
        assert fine_field(2) == "I2"

    def test_config_derived_quantities(self):
        assert CONFIG.drain == int(60 * 0.7)
        assert CONFIG.ecn_threshold == 30
        assert CONFIG.max_total() == 300
        assert CONFIG.max_egress() == 5 * 42


class TestCoarsen:
    def test_total_is_exact_sum(self):
        windows, _ = make_windows([1, 2, 3, 4, 5, 10, 20, 30, 0, 0])
        assert windows[0].total == 15
        assert windows[1].total == 60

    def test_window_count_floors(self):
        windows, _ = make_windows(list(range(12)))  # 12 ticks, window 5
        assert len(windows) == 2

    def test_no_congestion_under_light_load(self):
        windows, _ = make_windows([1] * 10)
        assert all(w.cong == 0 for w in windows)
        assert all(w.retx == 0 for w in windows)

    def test_congestion_on_burst(self):
        windows, _ = make_windows([60, 60, 0, 0, 0])
        assert windows[0].cong >= 1

    def test_retx_never_exceeds_cong(self):
        rng_fine = np.random.default_rng(0).integers(0, 61, 200)
        windows, _ = make_windows(rng_fine)
        for window in windows:
            assert 0 <= window.retx <= window.cong <= CONFIG.window

    def test_egress_bounded_by_drain(self):
        rng_fine = np.random.default_rng(1).integers(0, 61, 100)
        windows, _ = make_windows(rng_fine)
        for window in windows:
            assert 0 <= window.egr <= CONFIG.max_egress()

    def test_queue_conservation(self):
        """ingress = egress + queue growth over the whole series."""
        fine = np.random.default_rng(2).integers(0, 61, 100)
        windows, final_queue = make_windows(fine)
        total_in = sum(w.total for w in windows)
        total_out = sum(w.egr for w in windows)
        assert total_in == total_out + final_queue

    def test_initial_queue_carries_over(self):
        light = [0, 0, 0, 0, 0]
        without, _ = make_windows(light, initial_queue=0)
        with_queue, _ = make_windows(light, initial_queue=200)
        assert with_queue[0].egr > without[0].egr
        assert with_queue[0].cong >= without[0].cong

    def test_variables_dict_complete(self):
        windows, _ = make_windows([1, 2, 3, 4, 5])
        values = windows[0].variables()
        assert set(values) == set(window_variables(CONFIG.window))

    def test_coarse_dict(self):
        windows, _ = make_windows([1, 2, 3, 4, 5])
        assert set(windows[0].coarse()) == set(COARSE_FIELDS)


@given(
    st.lists(st.integers(0, 60), min_size=5, max_size=40),
    st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_invariants_hold_for_any_series(fine, initial_queue):
    usable = (len(fine) // CONFIG.window) * CONFIG.window
    windows, final_queue = make_windows(fine, initial_queue)
    assert len(windows) == usable // CONFIG.window
    for window in windows:
        assert window.total == sum(window.fine)
        assert 0 <= window.cong <= CONFIG.window
        assert 0 <= window.retx <= window.cong
        assert 0 <= window.egr <= CONFIG.max_egress()
        assert all(0 <= v <= CONFIG.bandwidth for v in window.fine)
    total_in = sum(w.total for w in windows)
    total_out = sum(w.egr for w in windows)
    assert initial_queue + total_in == total_out + final_queue
