"""Burst analysis and autocorrelation metric tests."""

import numpy as np
import pytest

from repro.metrics import (
    Burst,
    autocorrelation,
    autocorrelation_error,
    burst_metrics,
    find_bursts,
)


class TestAutocorrelation:
    def test_perfect_for_constant_trendless(self):
        series = np.sin(np.linspace(0, 20, 200))
        assert autocorrelation(series, 1) > 0.9

    def test_white_noise_near_zero(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=5000)
        assert abs(autocorrelation(series, 1)) < 0.1

    def test_degenerate_series_zero(self):
        assert autocorrelation([5.0] * 10, 1) == 0.0

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 5)

    def test_error_zero_for_identical(self):
        series = np.sin(np.linspace(0, 10, 100))
        assert autocorrelation_error(series, series) == pytest.approx(0.0)

    def test_error_positive_for_shuffled(self):
        rng = np.random.default_rng(1)
        series = np.sin(np.linspace(0, 10, 100))
        shuffled = rng.permutation(series)
        assert autocorrelation_error(series, shuffled) > 0.05

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation_error([1.0], [1.0])


class TestFindBursts:
    BW = 60

    def test_no_bursts(self):
        assert find_bursts([1, 2, 3], self.BW) == []

    def test_single_burst(self):
        bursts = find_bursts([0, 35, 40, 0, 0], self.BW)
        assert bursts == [Burst(start=1, end=2, height=40)]
        assert bursts[0].duration == 2
        assert bursts[0].position == 1.5

    def test_burst_at_series_end(self):
        bursts = find_bursts([0, 0, 45], self.BW)
        assert bursts == [Burst(start=2, end=2, height=45)]

    def test_threshold_boundary_inclusive(self):
        bursts = find_bursts([30], self.BW, threshold_fraction=0.5)
        assert len(bursts) == 1

    def test_multiple_bursts(self):
        series = [40, 0, 50, 55, 0, 0, 31]
        bursts = find_bursts(series, self.BW)
        assert len(bursts) == 3
        assert [b.height for b in bursts] == [40, 55, 31]


class TestBurstMetrics:
    BW = 60

    def test_identical_series_zero_errors(self):
        series = [0, 40, 50, 0, 35]
        report = burst_metrics(series, series, self.BW)
        assert report.count_error == 0
        assert report.height_error == 0
        assert report.duration_error == 0
        assert report.position_error == 0

    def test_missing_burst_penalized(self):
        truth = [0, 40, 0, 0, 0]
        predicted = [0, 0, 0, 0, 0]
        report = burst_metrics(truth, predicted, self.BW)
        assert report.count_error == 1.0
        assert report.position_error == 1.0

    def test_spurious_burst_penalized(self):
        truth = [0, 0, 0, 0, 0]
        predicted = [0, 40, 0, 0, 0]
        report = burst_metrics(truth, predicted, self.BW)
        assert report.count_error >= 1.0
        assert report.position_error == 1.0

    def test_shifted_burst_position_error(self):
        truth = [40, 0, 0, 0, 0]
        predicted = [0, 0, 0, 0, 40]
        report = burst_metrics(truth, predicted, self.BW)
        assert report.count_error == 0
        assert report.position_error == pytest.approx(4 / 5)

    def test_height_error_normalized_by_bandwidth(self):
        truth = [60, 0, 0]
        predicted = [30, 0, 0]
        report = burst_metrics(truth, predicted, self.BW)
        assert report.height_error == pytest.approx(0.5)

    def test_as_dict_keys(self):
        report = burst_metrics([0, 40], [0, 40], self.BW)
        assert set(report.as_dict()) == {
            "burst_count", "burst_height", "burst_duration", "burst_position",
        }
