"""Term and formula representation for the QF_LIA fragment used by LeJIT.

The solver reasons over *linear integer arithmetic with boolean structure*:
atoms are linear constraints over integer variables, combined with the usual
boolean connectives.  This is exactly the fragment the paper's network rules
(R1-R3, NetNomos output) live in.

Linear expressions are kept in a canonical form -- a mapping from variable
name to integer coefficient plus an integer constant -- so that structural
equality, hashing and normalization are cheap and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = int

__all__ = [
    "LinExpr",
    "IntVar",
    "Formula",
    "Atom",
    "BoolConst",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "Le",
    "Lt",
    "Ge",
    "Gt",
    "Eq",
    "Ne",
]


def _as_linexpr(value: "LinLike") -> "LinExpr":
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, int):
        return LinExpr({}, value)
    raise TypeError(f"cannot interpret {value!r} as a linear expression")


@dataclass(frozen=True)
class LinExpr:
    """An integer-valued linear expression ``sum(coeff[v] * v) + const``.

    Immutable and canonical: zero coefficients are dropped and the coefficient
    mapping is stored as a sorted tuple internally for hashing.
    """

    _items: Tuple[Tuple[str, int], ...]
    const: int

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        items = tuple(
            sorted((name, int(c)) for name, c in (coeffs or {}).items() if c != 0)
        )
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "const", int(const))

    @property
    def coeffs(self) -> Dict[str, int]:
        return dict(self._items)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._items)

    def coeff(self, name: str) -> int:
        for item_name, c in self._items:
            if item_name == name:
                return c
        return 0

    def is_constant(self) -> bool:
        return not self._items

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        total = self.const
        for name, c in self._items:
            total += c * assignment[name]
        return total

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "LinLike") -> "LinExpr":
        other = _as_linexpr(other)
        coeffs = dict(self._items)
        for name, c in other._items:
            coeffs[name] = coeffs.get(name, 0) + c
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({name: -c for name, c in self._items}, -self.const)

    def __sub__(self, other: "LinLike") -> "LinExpr":
        return self + (-_as_linexpr(other))

    def __rsub__(self, other: "LinLike") -> "LinExpr":
        return _as_linexpr(other) + (-self)

    def __mul__(self, k: int) -> "LinExpr":
        if not isinstance(k, int):
            raise TypeError("linear expressions can only be scaled by integers")
        return LinExpr({name: c * k for name, c in self._items}, self.const * k)

    __rmul__ = __mul__

    # -- comparisons build formulas -----------------------------------------

    def __le__(self, other: "LinLike") -> "Formula":
        return Le(self, other)

    def __lt__(self, other: "LinLike") -> "Formula":
        return Lt(self, other)

    def __ge__(self, other: "LinLike") -> "Formula":
        return Ge(self, other)

    def __gt__(self, other: "LinLike") -> "Formula":
        return Gt(self, other)

    def eq(self, other: "LinLike") -> "Formula":
        return Eq(self, other)

    def ne(self, other: "LinLike") -> "Formula":
        return Ne(self, other)

    def __repr__(self) -> str:
        parts = []
        for name, c in self._items:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


LinLike = Union[LinExpr, int]


def IntVar(name: str) -> LinExpr:
    """An integer variable as a (trivially linear) expression."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return LinExpr({name: 1}, 0)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for boolean formulas over linear-arithmetic atoms."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def atoms(self) -> Tuple["Atom", ...]:
        """All distinct atoms in the formula, in first-appearance order."""
        seen: Dict[Atom, None] = {}
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Atom):
                seen.setdefault(node, None)
            elif isinstance(node, Not):
                stack.append(node.arg)
            elif isinstance(node, (And, Or)):
                stack.extend(reversed(node.args))
            elif isinstance(node, (Implies, Iff)):
                stack.append(node.rhs)
                stack.append(node.lhs)
        return tuple(seen)

    def variables(self) -> Tuple[str, ...]:
        names: Dict[str, None] = {}
        for atom in self.atoms():
            for name in atom.expr.variables:
                names.setdefault(name, None)
        return tuple(names)


@dataclass(frozen=True)
class Atom(Formula):
    """A canonical linear atom: ``expr <= 0`` or ``expr == 0``.

    All user-facing comparison constructors normalize to these two shapes
    (strict inequalities become non-strict via integrality; ``>=``/``>`` flip
    signs; ``!=`` expands to a disjunction before this level).
    """

    expr: LinExpr
    op: str  # "<=" or "=="

    def __post_init__(self) -> None:
        if self.op not in ("<=", "=="):
            raise ValueError(f"atom op must be '<=' or '==', got {self.op!r}")

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(assignment)
        return value <= 0 if self.op == "<=" else value == 0

    def __repr__(self) -> str:
        return f"({self.expr!r} {self.op} 0)"


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Not(Formula):
    arg: Formula

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return not self.arg.evaluate(assignment)

    def __repr__(self) -> str:
        return f"~{self.arg!r}"


class _NaryFormula(Formula):
    __slots__ = ("args",)

    args: Tuple[Formula, ...]

    def __init__(self, *args: Formula):
        flat = []
        for arg in args:
            if isinstance(arg, Iterable) and not isinstance(arg, Formula):
                flat.extend(arg)
            else:
                flat.append(arg)
        for arg in flat:
            if not isinstance(arg, Formula):
                raise TypeError(f"expected Formula, got {arg!r}")
        object.__setattr__(self, "args", tuple(flat))

    def __setattr__(self, name, value):  # immutability, mirrors dataclass(frozen)
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.args == other.args

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.args))

    def __repr__(self) -> str:
        name = type(self).__name__
        return f"{name}({', '.join(map(repr, self.args))})"


class And(_NaryFormula):
    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return all(arg.evaluate(assignment) for arg in self.args)


class Or(_NaryFormula):
    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return any(arg.evaluate(assignment) for arg in self.args)


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return (not self.lhs.evaluate(assignment)) or self.rhs.evaluate(assignment)


@dataclass(frozen=True)
class Iff(Formula):
    lhs: Formula
    rhs: Formula

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.lhs.evaluate(assignment) == self.rhs.evaluate(assignment)


# ---------------------------------------------------------------------------
# Comparison constructors (normalize to canonical atoms)
# ---------------------------------------------------------------------------


def Le(lhs: LinLike, rhs: LinLike) -> Formula:
    """``lhs <= rhs`` as a canonical atom (or boolean constant if ground)."""
    expr = _as_linexpr(lhs) - _as_linexpr(rhs)
    if expr.is_constant():
        return TRUE if expr.const <= 0 else FALSE
    return Atom(expr, "<=")


def Lt(lhs: LinLike, rhs: LinLike) -> Formula:
    # Over the integers, lhs < rhs  <=>  lhs <= rhs - 1.
    return Le(_as_linexpr(lhs) + 1, rhs)


def Ge(lhs: LinLike, rhs: LinLike) -> Formula:
    return Le(rhs, lhs)


def Gt(lhs: LinLike, rhs: LinLike) -> Formula:
    return Lt(rhs, lhs)


def Eq(lhs: LinLike, rhs: LinLike) -> Formula:
    expr = _as_linexpr(lhs) - _as_linexpr(rhs)
    if expr.is_constant():
        return TRUE if expr.const == 0 else FALSE
    # Canonicalize sign so that x == y and y == x produce the same atom.
    items = expr.coeffs
    first = min(items)
    if items[first] < 0:
        expr = -expr
    return Atom(expr, "==")


def Ne(lhs: LinLike, rhs: LinLike) -> Formula:
    eq = Eq(lhs, rhs)
    if isinstance(eq, BoolConst):
        return BoolConst(not eq.value)
    return Not(eq)
