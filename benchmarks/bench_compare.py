"""Perf-regression gate over committed benchmark snapshots.

Diffs a fresh ``bench_serving.py`` / ``bench_stream.py`` /
``bench_scaling.py --decode-mode`` JSON report against the committed
baseline (``BENCH_serving.json``, ``BENCH_stream.json``, or
``BENCH_decode.json``) with tolerance bands, and exits nonzero when the
candidate regresses.  This is what CI runs so a perf regression fails
the build instead of silently rewriting the snapshot:

    python benchmarks/bench_compare.py \
        --baseline BENCH_serving.json --candidate /tmp/serving.json

Rules of the gate:

- **Lower-better latency metrics** (``p50_ms``/``p99_ms``/``mean_ms``,
  stream ``lag_p50_ms``/``lag_p99_ms``) may grow by at most
  ``--tolerance`` relative *and* must exceed an absolute noise floor
  (``--floor-ms``) before they count -- sub-millisecond jitter on a
  2 ms p50 is not a regression.
- **Higher-better rates** (``throughput_rps``, ``emitted_per_sec``) may
  shrink by at most ``--tolerance`` relative.
- **Boolean / counter checks** have no band: ``replay_parity`` and
  ``bounded`` must not flip false, ``boundary_violations`` and
  ``units_lost``/``failed`` must not increase.

Serving configs are matched by their identity keys (lanes, policy,
offered rps, request count); baseline rows with no candidate match are
reported but do not fail the gate (the candidate may run a trimmed
sweep), while a candidate that matches *nothing* is a usage error.

Comparing a file against itself always exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Relative growth allowed on lower-better metrics (and shrink on
#: higher-better ones) before the gate trips.
DEFAULT_TOLERANCE = 0.25

#: Absolute slack, in milliseconds, under which latency deltas are
#: treated as scheduler noise regardless of the relative band.
DEFAULT_FLOOR_MS = 2.0

SERVING_LOWER_BETTER_MS = ("p50_ms", "p99_ms", "mean_ms")
SERVING_HIGHER_BETTER = ("throughput_rps",)
SERVING_NON_INCREASING = ("failed", "expired")
POOL_NON_INCREASING = ("failed", "units_lost")
STREAM_LOWER_BETTER_MS = ("lag_p50_ms", "lag_p99_ms")
STREAM_HIGHER_BETTER = ("emitted_per_sec",)
DECODE_HIGHER_BETTER = ("lm_tokens_per_sec", "records_per_sec")
DECODE_SPEEDUPS = ("lm_speedup", "e2e_speedup")
MASK_HIGHER_BETTER = ("e2e_speedup", "solver_query_reduction",
                      "mask_hit_rate")


class Finding:
    """One compared metric: where it lives, both values, and a verdict."""

    def __init__(self, where: str, metric: str, baseline, candidate,
                 regression: bool, note: str = ""):
        self.where = where
        self.metric = metric
        self.baseline = baseline
        self.candidate = candidate
        self.regression = regression
        self.note = note

    def row(self) -> str:
        verdict = "REGRESSION" if self.regression else "ok"
        note = f"  ({self.note})" if self.note else ""
        return (f"  [{verdict:>10}] {self.where} {self.metric}: "
                f"{self.baseline} -> {self.candidate}{note}")


def _num(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _check_lower_ms(findings: List[Finding], where: str, metric: str,
                    base: Mapping, cand: Mapping,
                    tolerance: float, floor_ms: float) -> None:
    b, c = _num(base.get(metric)), _num(cand.get(metric))
    if b is None or c is None:
        return
    grew = c - b
    regressed = grew > floor_ms and c > b * (1.0 + tolerance)
    findings.append(Finding(where, metric, b, c, regressed))


def _check_higher(findings: List[Finding], where: str, metric: str,
                  base: Mapping, cand: Mapping, tolerance: float) -> None:
    b, c = _num(base.get(metric)), _num(cand.get(metric))
    if b is None or c is None:
        return
    regressed = c < b * (1.0 - tolerance)
    findings.append(Finding(where, metric, b, c, regressed))


def _check_non_increasing(findings: List[Finding], where: str, metric: str,
                          base: Mapping, cand: Mapping) -> None:
    b, c = _num(base.get(metric)), _num(cand.get(metric))
    if b is None or c is None:
        return
    findings.append(Finding(where, metric, b, c, c > b,
                            note="must not increase"))


def _check_bool(findings: List[Finding], where: str, metric: str,
                base: Mapping, cand: Mapping) -> None:
    b, c = base.get(metric), cand.get(metric)
    if not isinstance(b, bool) or not isinstance(c, bool):
        return
    findings.append(Finding(where, metric, b, c, b and not c,
                            note="must not flip false"))


def _serving_key(row: Mapping) -> Tuple:
    return (row.get("lanes"), row.get("policy"),
            row.get("offered_rps"), row.get("requests"))


def _pool_key(row: Mapping) -> Tuple:
    return (row.get("workers"), row.get("lanes_per_worker"),
            row.get("offered_rps"), row.get("requests"))


def _match_rows(findings: List[Finding], label: str,
                base_rows: Sequence[Mapping], cand_rows: Sequence[Mapping],
                key_fn, lower_ms: Sequence[str], higher: Sequence[str],
                non_increasing: Sequence[str],
                tolerance: float, floor_ms: float) -> int:
    cand_by_key: Dict[Tuple, Mapping] = {key_fn(r): r for r in cand_rows}
    matched = 0
    for base in base_rows:
        key = key_fn(base)
        cand = cand_by_key.get(key)
        where = f"{label}{key}"
        if cand is None:
            findings.append(Finding(where, "<config>", "present", "missing",
                                    False, note="not run by candidate"))
            continue
        matched += 1
        for metric in lower_ms:
            _check_lower_ms(findings, where, metric, base, cand,
                            tolerance, floor_ms)
        for metric in higher:
            _check_higher(findings, where, metric, base, cand, tolerance)
        for metric in non_increasing:
            _check_non_increasing(findings, where, metric, base, cand)
    return matched


def compare_serving(base: Mapping, cand: Mapping, tolerance: float,
                    floor_ms: float) -> List[Finding]:
    findings: List[Finding] = []
    matched = _match_rows(
        findings, "serving", base.get("configs", []),
        cand.get("configs", []), _serving_key,
        SERVING_LOWER_BETTER_MS, SERVING_HIGHER_BETTER,
        SERVING_NON_INCREASING, tolerance, floor_ms)
    base_pool = base.get("worker_pool") or {}
    cand_pool = cand.get("worker_pool") or {}
    matched += _match_rows(
        findings, "pool", base_pool.get("configs", []),
        cand_pool.get("configs", []), _pool_key,
        SERVING_LOWER_BETTER_MS, SERVING_HIGHER_BETTER,
        POOL_NON_INCREASING, tolerance, floor_ms)
    if not matched:
        raise SystemExit(
            "bench_compare: no candidate config matches any baseline "
            "config -- wrong file pair?")
    return findings


def compare_stream(base: Mapping, cand: Mapping, tolerance: float,
                   floor_ms: float) -> List[Finding]:
    findings: List[Finding] = []
    b_tp, c_tp = base.get("throughput", {}), cand.get("throughput", {})
    for metric in STREAM_LOWER_BETTER_MS:
        _check_lower_ms(findings, "stream", metric, b_tp, c_tp,
                        tolerance, floor_ms)
    for metric in STREAM_HIGHER_BETTER:
        _check_higher(findings, "stream", metric, b_tp, c_tp, tolerance)
    b_checks, c_checks = base.get("checks", {}), cand.get("checks", {})
    _check_bool(findings, "checks", "replay_parity", b_checks, c_checks)
    _check_non_increasing(findings, "checks", "boundary_violations",
                          b_checks, c_checks)
    _check_non_increasing(findings, "checks", "observational_deviations",
                          b_checks, c_checks)
    b_mem, c_mem = base.get("memory", {}), cand.get("memory", {})
    _check_bool(findings, "memory", "bounded", b_mem, c_mem)
    if not findings:
        raise SystemExit(
            "bench_compare: stream reports share no comparable metrics")
    return findings


def compare_decode(base: Mapping, cand: Mapping, tolerance: float,
                   floor_ms: float) -> List[Finding]:
    """Decode + mask-table report: BENCH_decode.json shape.

    ``windows`` rows carry the KV-cache story (tokens/s and rec/s per
    decode mode, speedups); the ``mask`` section carries the compiled
    mask-table story per oracle config.  Byte parity never gets a band:
    a parity flip is a correctness bug wearing a perf costume.
    """
    findings: List[Finding] = []
    matched = 0
    cand_windows = cand.get("windows", {})
    for window, base_row in base.get("windows", {}).items():
        cand_row = cand_windows.get(window)
        where = f"decode(window={window})"
        if cand_row is None:
            findings.append(Finding(where, "<config>", "present", "missing",
                                    False, note="not run by candidate"))
            continue
        matched += 1
        for mode, base_mode in base_row.get("modes", {}).items():
            cand_mode = cand_row.get("modes", {}).get(mode, {})
            for metric in DECODE_HIGHER_BETTER:
                _check_higher(findings, f"{where}[{mode}]", metric,
                              base_mode, cand_mode, tolerance)
        for metric in DECODE_SPEEDUPS:
            _check_higher(findings, where, metric, base_row, cand_row,
                          tolerance)
        b_par = base_row.get("parity") == "byte-identical"
        c_par = cand_row.get("parity") == "byte-identical"
        findings.append(Finding(where, "parity", base_row.get("parity"),
                                cand_row.get("parity"), b_par and not c_par,
                                note="must stay byte-identical"))
    base_mask, cand_mask = base.get("mask") or {}, cand.get("mask") or {}
    cand_oracles = cand_mask.get("oracles", {})
    same_workload = base_mask.get("records") == cand_mask.get("records")
    for oracle, base_row in base_mask.get("oracles", {}).items():
        cand_row = cand_oracles.get(oracle)
        where = f"mask(oracle={oracle})"
        if cand_row is None:
            findings.append(Finding(where, "<config>", "present", "missing",
                                    False, note="not run by candidate"))
            continue
        matched += 1
        for arm in ("live", "mask"):
            base_arm = base_row.get("arms", {}).get(arm, {})
            cand_arm = cand_row.get("arms", {}).get(arm, {})
            _check_higher(findings, f"{where}[{arm}]", "records_per_sec",
                          base_arm, cand_arm, tolerance)
        # Live-query counts are deterministic in (seed, prompts, rules),
        # so the mask arm's residual solver traffic gets no noise band --
        # but per-record normalisation only lines up at equal workload
        # sizes (first-visit fallbacks amortise over the record count).
        if same_workload:
            _check_non_increasing(
                findings, f"{where}[mask]", "solver_queries_per_record",
                base_row.get("arms", {}).get("mask", {}),
                cand_row.get("arms", {}).get("mask", {}))
        base_hit = {"mask_hit_rate":
                    base_row.get("arms", {}).get("mask", {}).get("mask_hit_rate")}
        cand_hit = {"mask_hit_rate":
                    cand_row.get("arms", {}).get("mask", {}).get("mask_hit_rate")}
        for metric in MASK_HIGHER_BETTER:
            src_b = base_hit if metric == "mask_hit_rate" else base_row
            src_c = cand_hit if metric == "mask_hit_rate" else cand_row
            _check_higher(findings, where, metric, src_b, src_c, tolerance)
        _check_bool(findings, where, "parity", base_row, cand_row)
    if not matched:
        raise SystemExit(
            "bench_compare: no candidate window/oracle matches any "
            "baseline row -- wrong file pair?")
    return findings


def compare(base: Mapping, cand: Mapping,
            tolerance: float = DEFAULT_TOLERANCE,
            floor_ms: float = DEFAULT_FLOOR_MS) -> List[Finding]:
    """Dispatch on report shape; both files must be the same kind."""

    def kind(report: Mapping) -> Optional[str]:
        if "configs" in report:
            return "serving"
        if "windows" in report:
            return "decode"
        if "throughput" in report:
            return "stream"
        return None

    base_kind, cand_kind = kind(base), kind(cand)
    if base_kind is None or cand_kind is None or base_kind != cand_kind:
        raise SystemExit(
            f"bench_compare: cannot compare a {base_kind or 'unknown'} "
            f"baseline against a {cand_kind or 'unknown'} candidate")
    if base_kind == "serving":
        return compare_serving(base, cand, tolerance, floor_ms)
    if base_kind == "decode":
        return compare_decode(base, cand, tolerance, floor_ms)
    return compare_stream(base, cand, tolerance, floor_ms)


def _load(path: str) -> Mapping:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"bench_compare: {path} is not a JSON object")
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a benchmark report against a committed baseline "
                    "and fail on regression.")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json snapshot")
    parser.add_argument("--candidate", required=True,
                        help="freshly generated report to gate")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative band on latency/throughput metrics "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--floor-ms", type=float, default=DEFAULT_FLOOR_MS,
                        help="absolute latency slack treated as noise "
                             f"(default {DEFAULT_FLOOR_MS} ms)")
    args = parser.parse_args(argv)
    if args.tolerance < 0 or args.floor_ms < 0:
        parser.error("--tolerance and --floor-ms must be non-negative")

    findings = compare(_load(args.baseline), _load(args.candidate),
                       tolerance=args.tolerance, floor_ms=args.floor_ms)
    regressions = [f for f in findings if f.regression]
    print(f"bench_compare: {args.candidate} vs {args.baseline} "
          f"({len(findings)} checks, tolerance {args.tolerance:g}, "
          f"floor {args.floor_ms:g} ms)")
    for finding in findings:
        print(finding.row())
    if regressions:
        print(f"bench_compare: FAIL -- {len(regressions)} regression(s)")
        return 1
    print("bench_compare: ok -- no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
