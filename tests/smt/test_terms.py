"""Unit tests for the term/formula layer."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    And,
    Atom,
    Eq,
    Ge,
    Gt,
    Implies,
    IntVar,
    Le,
    LinExpr,
    Lt,
    Ne,
    Not,
    Or,
)


class TestLinExpr:
    def test_variable_construction(self):
        x = IntVar("x")
        assert x.coeffs == {"x": 1}
        assert x.const == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            IntVar("")

    def test_addition_merges_coefficients(self):
        x, y = IntVar("x"), IntVar("y")
        expr = x + y + x
        assert expr.coeffs == {"x": 2, "y": 1}

    def test_subtraction_cancels(self):
        x = IntVar("x")
        expr = x - x
        assert expr.is_constant()
        assert expr.const == 0

    def test_scalar_multiplication(self):
        x = IntVar("x")
        expr = 3 * x + 2
        assert expr.coeffs == {"x": 3}
        assert expr.const == 2

    def test_non_integer_scale_rejected(self):
        with pytest.raises(TypeError):
            IntVar("x") * 1.5

    def test_negation(self):
        expr = -(IntVar("x") + 5)
        assert expr.coeffs == {"x": -1}
        assert expr.const == -5

    def test_evaluate(self):
        expr = 2 * IntVar("x") - IntVar("y") + 7
        assert expr.evaluate({"x": 3, "y": 4}) == 9

    def test_rsub(self):
        expr = 10 - IntVar("x")
        assert expr.evaluate({"x": 4}) == 6

    def test_zero_coefficients_dropped(self):
        expr = LinExpr({"x": 0, "y": 1})
        assert expr.variables == ("y",)

    def test_hash_equality_canonical(self):
        a = LinExpr({"x": 1, "y": 2}, 3)
        b = LinExpr({"y": 2, "x": 1}, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_coeff_lookup(self):
        expr = LinExpr({"x": 5})
        assert expr.coeff("x") == 5
        assert expr.coeff("missing") == 0


class TestComparisons:
    def test_le_builds_atom(self):
        f = Le(IntVar("x"), 5)
        assert isinstance(f, Atom)
        assert f.op == "<="

    def test_lt_uses_integrality(self):
        # x < 5 over ints is x <= 4.
        f = Lt(IntVar("x"), 5)
        assert f.evaluate({"x": 4})
        assert not f.evaluate({"x": 5})

    def test_gt_ge(self):
        assert Gt(IntVar("x"), 3).evaluate({"x": 4})
        assert Ge(IntVar("x"), 3).evaluate({"x": 3})
        assert not Gt(IntVar("x"), 3).evaluate({"x": 3})

    def test_ground_comparisons_fold(self):
        assert Le(3, 5) == TRUE
        assert Le(5, 3) == FALSE
        assert Eq(4, 4) == TRUE
        assert Ne(4, 4) == FALSE

    def test_eq_is_symmetric_canonical(self):
        x, y = IntVar("x"), IntVar("y")
        assert Eq(x, y) == Eq(y, x)

    def test_ne_negates_eq(self):
        f = Ne(IntVar("x"), 3)
        assert f.evaluate({"x": 4})
        assert not f.evaluate({"x": 3})


class TestFormulas:
    def test_connective_evaluation(self):
        x = IntVar("x")
        f = And(Ge(x, 0), Le(x, 10))
        assert f.evaluate({"x": 5})
        assert not f.evaluate({"x": 11})

    def test_or_implies_iff(self):
        x = IntVar("x")
        assert Or(Le(x, 0), Ge(x, 10)).evaluate({"x": -1})
        assert Implies(Ge(x, 5), Ge(x, 0)).evaluate({"x": 7})
        assert Implies(Ge(x, 5), Ge(x, 0)).evaluate({"x": 1})  # vacuous

    def test_operator_sugar(self):
        x = IntVar("x")
        f = (Ge(x, 0)) & (Le(x, 5))
        assert f == And(Ge(x, 0), Le(x, 5))
        g = Ge(x, 0) | Le(x, -5)
        assert isinstance(g, Or)
        assert (~Ge(x, 0)) == Not(Ge(x, 0))
        assert (Ge(x, 5) >> Ge(x, 0)) == Implies(Ge(x, 5), Ge(x, 0))

    def test_atoms_deduplicated_in_order(self):
        x = IntVar("x")
        a, b = Le(x, 5), Ge(x, 0)
        f = And(a, Or(b, a), b)
        assert f.atoms() == (a, b)

    def test_variables(self):
        f = And(Le(IntVar("b"), 1), Ge(IntVar("a"), 0))
        assert set(f.variables()) == {"a", "b"}

    def test_atom_rejects_bad_op(self):
        with pytest.raises(ValueError):
            Atom(IntVar("x"), "<")

    def test_nary_flattening_of_iterables(self):
        x = IntVar("x")
        parts = [Le(x, 1), Le(x, 2)]
        f = And(parts)
        assert len(f.args) == 2
