"""The paper's full worked example (Figs. 1 and 2), end to end.

A model biased toward the paper's invalid continuation [20, 15, 25, 70, 8]
is guided by LeJIT with R1-R3 and must instead produce a compliant record,
making only minimal changes.
"""

import numpy as np
import pytest

from repro.core import EnforcerConfig, JitEnforcer
from repro.core.transition import DigitTransitionSystem, FeasibleSet
from repro.data import TelemetryConfig, prompt_text
from repro.lm import CharTokenizer, NgramLM
from repro.rules import paper_rules


CONFIG = TelemetryConfig()  # T=5, BW=60 exactly as in the paper
COARSE = {"total": 100, "cong": 3, "retx": 1, "egr": 100}


@pytest.fixture(scope="module")
def biased_model():
    """An LM that has only ever seen the invalid record of Fig. 1a."""
    record = prompt_text(COARSE) + "20 15 25 70 8\n"
    return NgramLM(order=8).fit([record] * 50)


class TestWorkedExample:
    def test_unguided_model_reproduces_the_mistake(self, biased_model):
        from repro.core import RecordSampler

        sampler = RecordSampler(biased_model, CONFIG, seed=0)
        record = sampler.impute_raw(COARSE)
        rules = paper_rules(CONFIG)
        broken = {r.name for r in rules.violations(record)}
        assert "R1[3]" in broken or "R2" in broken

    def test_lejit_guides_to_compliance(self, biased_model):
        rules = paper_rules(CONFIG)
        enforcer = JitEnforcer(
            biased_model, rules, CONFIG, EnforcerConfig(seed=0)
        )
        values = enforcer.impute(COARSE)
        assert rules.compliant(values)
        # The guided record still follows the model's early (valid) choices.
        assert values["I0"] == 20
        assert values["I1"] == 15
        assert values["I2"] == 25

    def test_i3_feasible_region_matches_figure(self):
        """After [20, 15, 25], the solver's region for I3 is [0, 40]."""
        from repro.core.feasible import SmtOracle
        from repro.data import variable_bounds

        oracle = SmtOracle(paper_rules(CONFIG), variable_bounds(CONFIG))
        oracle.begin_record(COARSE)
        for name, value in [("I0", 20), ("I1", 15), ("I2", 25)]:
            oracle.fix(name, value)
        fs = oracle.feasible_set("I3")
        assert (fs.min_value, fs.max_value) == (0, 40)

    def test_transition_system_for_i3(self):
        """The Fig. 2 transition system over the region [0, 40]."""
        system = DigitTransitionSystem(FeasibleSet.from_interval(0, 40))
        # From the start state every digit is possible (single-digit values
        # are all <= 40); after '7' no continuation stays in range...
        assert "7" in system.allowed_next("")
        # ...but '7' must close immediately: 70..79 are all out of range.
        assert system.allowed_next("7") == {"sep"}
        # After '4', only '0' or closing keeps the value valid.
        assert system.allowed_next("4") == {"0", "sep"}

    def test_forced_final_value(self, biased_model):
        """With [20, 15, 25, 39] fixed, only I4 = 1 remains (step 5)."""
        from repro.core.feasible import SmtOracle
        from repro.data import variable_bounds

        oracle = SmtOracle(paper_rules(CONFIG), variable_bounds(CONFIG))
        oracle.begin_record(COARSE)
        for name, value in [("I0", 20), ("I1", 15), ("I2", 25), ("I3", 39)]:
            oracle.fix(name, value)
        fs = oracle.feasible_set("I4")
        assert fs.segments == ((1, 1),)

    def test_guidance_is_minimally_invasive(self, biased_model):
        """Valid prefixes pass through unchanged; only the invalid token is
        diverted (the paper's 'a little guidance goes a long way')."""
        rules = paper_rules(CONFIG)
        enforcer = JitEnforcer(
            biased_model, rules, CONFIG, EnforcerConfig(seed=0)
        )
        enforcer.impute(COARSE)
        trace = enforcer.trace.sample
        # Some steps were diverted (the 70), but not the majority.
        assert trace.diverted_steps >= 1
        assert trace.diverted_steps < trace.steps / 2
