"""Span tracer tests: parenting, exact timing, the ring bound, the sink."""

import io
import json

import pytest

from repro.obs import (
    OBS,
    ManualClock,
    SPAN_SCHEMA_VERSION,
    SpanTracer,
    load_trace,
    validate_span,
)


class TestSpanLifecycle:
    def test_manual_clock_gives_exact_durations(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        outer = tracer.start("record")
        clock.advance(0.5)
        inner = tracer.start("step", parent=outer)
        clock.advance(0.25)
        inner_span = tracer.end(inner)
        outer_span = tracer.end(outer)
        assert inner_span["dur_s"] == 0.25
        assert outer_span["dur_s"] == 0.75
        assert inner_span["parent"] == outer
        assert outer_span["parent"] is None

    def test_end_attrs_merge_over_start_attrs(self):
        tracer = SpanTracer(clock=ManualClock())
        span_id = tracer.start("step", attrs={"variable": "I0", "try": 1})
        span = tracer.end(span_id, attrs={"try": 2, "value": 7})
        assert span["attrs"] == {"variable": "I0", "try": 2, "value": 7}

    def test_children_are_emitted_before_parents(self):
        tracer = SpanTracer(clock=ManualClock())
        outer = tracer.start("record")
        inner = tracer.start("step", parent=outer)
        tracer.end(inner)
        tracer.end(outer)
        names = [span["name"] for span in tracer.drain()]
        assert names == ["step", "record"]

    def test_ending_unknown_span_raises(self):
        tracer = SpanTracer(clock=ManualClock())
        with pytest.raises(KeyError):
            tracer.end(99)

    def test_abandon_drops_without_emitting(self):
        tracer = SpanTracer(clock=ManualClock())
        span_id = tracer.start("record")
        tracer.abandon(span_id)
        assert tracer.open_spans == 0
        assert tracer.emitted == 0


class TestRingAndSink:
    def test_ring_is_bounded_and_counts_drops(self):
        tracer = SpanTracer(ring_size=3, clock=ManualClock())
        for index in range(5):
            tracer.end(tracer.start("step", attrs={"i": index}))
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        kept = [span["attrs"]["i"] for span in tracer.drain()]
        assert kept == [2, 3, 4]  # newest wins

    def test_sink_receives_every_span_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = ManualClock()
        tracer = SpanTracer(ring_size=2, sink=path, clock=clock)
        for _ in range(4):
            span_id = tracer.start("step")
            clock.advance(0.001)
            tracer.end(span_id)
        tracer.close()
        spans = load_trace(path)
        assert len(spans) == 4  # the sink outlives the ring bound
        for span in spans:
            assert span["v"] == SPAN_SCHEMA_VERSION

    def test_file_object_sink_is_not_closed(self):
        buffer = io.StringIO()
        tracer = SpanTracer(sink=buffer, clock=ManualClock())
        tracer.end(tracer.start("record"))
        tracer.close()
        assert not buffer.closed
        assert len(buffer.getvalue().splitlines()) == 1


class TestValidation:
    def _valid(self):
        return {
            "v": SPAN_SCHEMA_VERSION,
            "span": 1,
            "parent": None,
            "name": "record",
            "start": 0.0,
            "end": 1.0,
            "dur_s": 1.0,
            "attrs": {"stage": "smt-confirm"},
        }

    def test_valid_span_passes(self):
        assert validate_span(self._valid())["span"] == 1

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda s: s.update(v=99), "schema version"),
            (lambda s: s.pop("dur_s"), "missing required field"),
            (lambda s: s.update(name=7), "wrong type"),
            (lambda s: s.update(parent="x"), "'parent'"),
            (lambda s: s.update(dur_s=-1.0, end=-1.0), "negative duration"),
            (lambda s: s["attrs"].update(bad=[1, 2]), "not a scalar"),
        ],
    )
    def test_violations_raise_with_field_context(self, mutate, message):
        span = self._valid()
        mutate(span)
        with pytest.raises(ValueError, match=message):
            validate_span(span)

    def test_load_trace_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(self._valid())
        path.write_text(good + "\n{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)


class TestObservabilitySeam:
    def teardown_method(self):
        OBS.disable()

    def test_inactive_profile_is_shared_null_span(self):
        assert OBS.profile("record") is OBS.profile("step")
        assert OBS.start_span("record") is None

    def test_profile_nesting_sets_implicit_parent(self):
        tracer = OBS.enable(SpanTracer(clock=ManualClock()))
        with OBS.profile("record") as outer:
            with OBS.profile("step"):
                pass
        spans = {span["name"]: span for span in tracer.drain()}
        assert spans["step"]["parent"] == outer.span_id
        assert spans["record"]["parent"] is None

    def test_explicit_parent_overrides_the_stack(self):
        tracer = OBS.enable(SpanTracer(clock=ManualClock()))
        root = OBS.start_span("record", parent=None)
        with OBS.profile("step"):
            with OBS.profile("smt_confirm", parent=root):
                pass
        OBS.end_span(root)
        spans = {span["name"]: span for span in tracer.drain()}
        assert spans["smt_confirm"]["parent"] == root

    def test_exception_is_annotated_and_span_still_emitted(self):
        tracer = OBS.enable(SpanTracer(clock=ManualClock()))
        with pytest.raises(RuntimeError):
            with OBS.profile("repair"):
                raise RuntimeError("boom")
        (span,) = tracer.drain()
        assert span["attrs"]["error"] == "RuntimeError"

    def test_disable_detaches_tracer(self):
        OBS.enable(SpanTracer(clock=ManualClock()))
        OBS.disable()
        assert OBS.active is False
        assert OBS.tracer is None
