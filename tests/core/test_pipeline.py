"""RecordSampler (vanilla generation) tests."""

import numpy as np
import pytest

from repro.core import RecordSampler, audit_violation_rate
from repro.core.pipeline import SamplerStats
from repro.data import COARSE_FIELDS, TelemetryConfig, build_dataset, fine_field
from repro.lm import NgramLM
from repro.rules import domain_bound_rules, paper_rules


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(4, 1, 40, seed=9)
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model


class TestRecordSampler:
    def test_impute_raw_echoes_prompt(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=0)
        window = dataset.test_windows()[0]
        record = sampler.impute_raw(window.coarse())
        for name in COARSE_FIELDS:
            assert record[name] == window.coarse()[name]

    def test_impute_raw_has_all_fine_fields(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=0)
        record = sampler.impute_raw(dataset.test_windows()[0].coarse())
        for index in range(dataset.config.window):
            assert fine_field(index) in record
            assert isinstance(record[fine_field(index)], int)

    def test_synthesize_raw_produces_full_record(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=1)
        record = sampler.synthesize_raw()
        expected = set(COARSE_FIELDS) | {
            fine_field(t) for t in range(dataset.config.window)
        }
        assert set(record) == expected

    def test_stats_track_records(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=0)
        for _ in range(3):
            sampler.synthesize_raw()
        assert sampler.stats.records == 3

    def test_repair_path_clamps_to_domain(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config)
        record = sampler._repair("999999 1 2>1 2\n")
        bounds_rules = domain_bound_rules(dataset.config)
        assert bounds_rules.compliant(record)

    def test_repair_garbage(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config)
        record = sampler._repair("")
        assert all(isinstance(v, int) for v in record.values())

    def test_deterministic_with_seed(self, setting):
        dataset, model = setting
        first = RecordSampler(model, dataset.config, seed=5).synthesize_raw()
        second = RecordSampler(model, dataset.config, seed=5).synthesize_raw()
        assert first == second


class TestAuditHelper:
    def test_violation_rate(self, setting):
        dataset, _ = setting
        rules = paper_rules(dataset.config)
        good = dataset.test_windows()[0].variables()
        bad = dict(good)
        bad["I0"] = 1000
        assert audit_violation_rate([good, bad], rules) == pytest.approx(
            (0 if rules.compliant(good) else 1) / 2 + 0.5
        )

    def test_empty_batch(self, setting):
        dataset, _ = setting
        assert audit_violation_rate([], paper_rules(dataset.config)) == 0.0


class TestBatchedRawSampling:
    def test_synthesize_raw_many_batch_size_independent(self, setting):
        """Per-record rng streams make output independent of batch size."""
        dataset, model = setting
        runs = [
            RecordSampler(model, dataset.config, seed=11).synthesize_raw_many(
                6, batch_size=batch_size
            )
            for batch_size in (1, 3, 6)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_impute_raw_many_echoes_prompts(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=7)
        coarse = [w.coarse() for w in dataset.test_windows()[:5]]
        records = sampler.impute_raw_many(coarse, batch_size=4)
        assert len(records) == 5
        for prompt, record in zip(coarse, records):
            for name in COARSE_FIELDS:
                assert record[name] == prompt[name]
            for t in range(dataset.config.window):
                assert fine_field(t) in record

    def test_batched_stats_accumulate(self, setting):
        dataset, model = setting
        sampler = RecordSampler(model, dataset.config, seed=5)
        sampler.synthesize_raw_many(4, batch_size=2)
        assert sampler.stats.records == 4

    def test_batch_size_one_matches_larger_batches(self, setting):
        dataset, model = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:4]]
        a = RecordSampler(model, dataset.config, seed=3).impute_raw_many(
            coarse, batch_size=1
        )
        b = RecordSampler(model, dataset.config, seed=3).impute_raw_many(
            coarse, batch_size=4
        )
        assert a == b
