"""Rule-set persistence tests."""

import json

import pytest

from repro.data import (
    TelemetryConfig,
    build_dataset,
    fine_field,
    variable_bounds,
    window_variables,
)
from repro.rules import (
    MinerOptions,
    RuleSetRegistry,
    load_rules,
    mine_rules,
    paper_rules,
    rules_fingerprint,
    rules_from_json,
    rules_to_json,
    save_rules,
)


class TestRuleIo:
    def test_roundtrip_paper_rules(self, tmp_path):
        rules = paper_rules(TelemetryConfig())
        path = tmp_path / "rules.json"
        save_rules(rules, path)
        restored = load_rules(path)
        assert len(restored) == len(rules)
        assert restored.name == rules.name
        for original in rules:
            copy = restored[original.name]
            assert copy.formula == original.formula
            assert copy.kind == original.kind
            assert copy.source == original.source
            assert copy.description == original.description

    def test_roundtrip_mined_rules_semantics(self, tmp_path):
        dataset = build_dataset(3, 1, 30, seed=8)
        assignments = [w.variables() for w in dataset.train_windows()]
        rules = mine_rules(
            assignments,
            list(window_variables(dataset.config.window)),
            MinerOptions(slack=1),
            fine_variables=[fine_field(t) for t in range(dataset.config.window)],
        )
        path = tmp_path / "mined.json"
        save_rules(rules, path)
        restored = load_rules(path)
        assert len(restored) == len(rules)
        for assignment in assignments[:30]:
            assert restored.violations(assignment) == []

    def test_format_guard(self):
        with pytest.raises(ValueError):
            rules_from_json(json.dumps({"format": "something-else", "rules": []}))

    def test_json_is_valid_and_versioned(self):
        text = rules_to_json(paper_rules())
        payload = json.loads(text)
        assert payload["format"] == "lejit-rules/1"
        assert len(payload["rules"]) == len(paper_rules())

    def test_mined_pack_fingerprint_survives_round_trip(self, tmp_path):
        """A mined pack's content hash -- the registry identity and the
        cache-partition key -- must be bit-stable through save/load."""
        dataset = build_dataset(3, 1, 30, seed=8)
        assignments = [w.variables() for w in dataset.train_windows()]
        rules = mine_rules(
            assignments,
            list(window_variables(dataset.config.window)),
            MinerOptions(slack=1),
            fine_variables=[fine_field(t) for t in range(dataset.config.window)],
        )
        path = tmp_path / "mined.json"
        save_rules(rules, path)
        restored = load_rules(path)
        assert rules_fingerprint(restored) == rules_fingerprint(rules)
        # And through a second generation: load -> save -> load.
        save_rules(restored, tmp_path / "mined2.json")
        assert rules_fingerprint(
            load_rules(tmp_path / "mined2.json")
        ) == rules_fingerprint(rules)

    def test_mined_pack_feasible_behaviour_survives_round_trip(self, tmp_path):
        """The loaded pack must induce the same feasible sets as the mined
        original -- solver semantics, not just JSON text."""
        from repro.core.feasible import SmtOracle

        dataset = build_dataset(3, 1, 30, seed=8)
        assignments = [w.variables() for w in dataset.train_windows()]
        rules = mine_rules(
            assignments,
            list(window_variables(dataset.config.window)),
            MinerOptions(slack=1),
            fine_variables=[fine_field(t) for t in range(dataset.config.window)],
        )
        path = tmp_path / "mined.json"
        save_rules(rules, path)
        restored = load_rules(path)
        bounds = variable_bounds(dataset.config)
        mined_oracle = SmtOracle(rules, bounds)
        loaded_oracle = SmtOracle(restored, bounds)
        window = dataset.test_windows()[0]
        prompt = window.coarse()
        fine = window.variables()
        mined_oracle.begin_record(prompt)
        loaded_oracle.begin_record(prompt)
        for t in range(dataset.config.window):
            name = f"I{t}"
            assert (
                loaded_oracle.feasible_set(name).segments
                == mined_oracle.feasible_set(name).segments
            )
            mined_oracle.fix(name, fine[name])
            loaded_oracle.fix(name, fine[name])

    def test_registry_version_bump_on_remined_pack(self, tmp_path):
        """Re-mining and re-registering under one name bumps the version;
        identical content keeps an identical hash across versions."""
        dataset = build_dataset(3, 1, 30, seed=8)
        assignments = [w.variables() for w in dataset.train_windows()]

        def mined():
            return mine_rules(
                assignments,
                list(window_variables(dataset.config.window)),
                MinerOptions(slack=1),
                fine_variables=[
                    fine_field(t) for t in range(dataset.config.window)
                ],
            )

        registry = RuleSetRegistry(root=tmp_path)
        path = tmp_path / "mined.json"
        save_rules(mined(), path)
        v1 = registry.register(load_rules(path), name="mined-pack")
        v2 = registry.register(load_rules(path), name="mined-pack")
        assert (v1.version, v2.version) == (1, 2)
        assert v1.content_hash == v2.content_hash  # same data, same mine
        assert registry.resolve("mined-pack") is v1  # v2 needs a promote
        registry.promote("mined-pack", 2)
        reopened = RuleSetRegistry(root=tmp_path)
        assert reopened.resolve("mined-pack").version == 2

    def test_missing_fields_default(self):
        payload = {
            "format": "lejit-rules/1",
            "rules": [
                {"name": "r", "formula": {"op": "true"}},
            ],
        }
        rules = rules_from_json(json.dumps(payload))
        assert rules["r"].kind == "generic"
        assert rules["r"].source == "manual"
