"""CDCL SAT solver tests: unit cases plus randomized brute-force checks."""

import itertools
import random

import pytest

from repro.smt.sat import SatSolver


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in c) for c in clauses):
            return True
    return False


def model_satisfies(clauses, model):
    return all(any((lit > 0) == model[abs(lit)] for lit in clause) for clause in clauses)


class TestBasics:
    def test_empty_instance_is_sat(self):
        assert SatSolver().solve().satisfiable

    def test_unit_clause(self):
        solver = SatSolver()
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] is True

    def test_contradictory_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve().satisfiable

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_tautology_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve().satisfiable

    def test_duplicate_literals_collapse(self):
        solver = SatSolver()
        solver.add_clause([2, 2, 2])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[2] is True

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.model[3] is True


class TestPigeonhole:
    def test_php_4_into_3_unsat(self):
        def var(p, h):
            return p * 3 + h + 1

        solver = SatSolver()
        for p in range(4):
            solver.add_clause([var(p, h) for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert not solver.solve().satisfiable

    def test_php_3_into_3_sat(self):
        def var(p, h):
            return p * 3 + h + 1

        solver = SatSolver()
        for p in range(3):
            solver.add_clause([var(p, h) for h in range(3)])
        for h in range(3):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve().satisfiable


class TestAssumptions:
    def test_assumptions_restrict(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert not solver.solve([-2, -3]).satisfiable
        assert solver.solve([-2]).satisfiable

    def test_assumption_of_fresh_variable(self):
        solver = SatSolver()
        solver.add_clause([1])
        result = solver.solve([5])
        assert result.satisfiable
        assert result.model[5] is True

    def test_solver_reusable_after_unsat_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert not solver.solve([-1, -2]).satisfiable
        assert solver.solve().satisfiable

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve().satisfiable


class TestRandomized:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            num_vars = rng.randint(3, 10)
            num_clauses = rng.randint(3, 45)
            clauses = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(num_clauses)
            ]
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            assert result.satisfiable == brute_force_sat(clauses, num_vars)
            if result.satisfiable:
                assert model_satisfies(clauses, result.model)

    def test_larger_random_instances_terminate(self):
        rng = random.Random(99)
        for _ in range(5):
            num_vars = 40
            clauses = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(3)
                ]
                for _ in range(150)
            ]
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            if result.satisfiable:
                assert model_satisfies(clauses, result.model)

    def test_phase_transition_instances_trigger_restarts(self):
        """Near-threshold random 3-SAT exercises conflict analysis, clause
        learning and the Luby restart schedule."""
        rng = random.Random(7)
        for _ in range(3):
            num_vars = 50
            clauses = [
                [
                    rng.choice([1, -1]) * v
                    for v in rng.sample(range(1, num_vars + 1), 3)
                ]
                for _ in range(int(4.26 * num_vars))
            ]
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            if result.satisfiable:
                assert model_satisfies(clauses, result.model)
