"""Admission queue tests: backpressure, ordering, reaping, shutdown."""

import pytest

from repro.errors import QueueFull, ServerClosed
from repro.serve import AdmissionQueue, RequestSpec, ServeRequest
from repro.serve.types import CANCELLED, EXPIRED, FAILED, QUEUED


def _request(priority=0, timeout_ms=None, seed=None):
    return ServeRequest(
        RequestSpec(
            "synthesize", priority=priority, timeout_ms=timeout_ms, seed=seed
        )
    )


class TestBackpressure:
    def test_submit_past_depth_raises_queue_full(self):
        queue = AdmissionQueue(max_depth=3)
        for _ in range(3):
            queue.submit(_request())
        with pytest.raises(QueueFull):
            queue.submit(_request())
        assert queue.rejected == 1
        assert len(queue) == 3

    def test_rejected_submission_never_blocks_or_buffers(self):
        queue = AdmissionQueue(max_depth=1)
        queue.submit(_request())
        overflow = _request()
        with pytest.raises(QueueFull):
            queue.submit(overflow)
        # The refused request is untouched: still QUEUED, not failed.
        assert overflow.status == QUEUED
        assert not overflow.done

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


class TestOrdering:
    def test_lower_priority_value_pops_first(self):
        queue = AdmissionQueue()
        low = _request(priority=5)
        high = _request(priority=-1)
        mid = _request(priority=0)
        for request in (low, high, mid):
            queue.submit(request)
        assert queue.pop() is high
        assert queue.pop() is mid
        assert queue.pop() is low
        assert queue.pop() is None

    def test_fifo_within_a_priority_class(self):
        queue = AdmissionQueue()
        requests = [_request(priority=1) for _ in range(4)]
        for request in requests:
            queue.submit(request)
        assert [queue.pop() for _ in range(4)] == requests


class TestReaping:
    def test_cancelled_request_is_reaped_at_pop(self):
        queue = AdmissionQueue()
        doomed = _request()
        survivor = _request()
        queue.submit(doomed)
        queue.submit(survivor)
        assert doomed.cancel()
        assert queue.pop() is survivor
        assert doomed.status == CANCELLED
        assert doomed.done
        assert queue.reaped_cancelled == 1

    def test_expired_request_is_reaped_at_pop(self):
        queue = AdmissionQueue()
        doomed = _request(timeout_ms=0)
        queue.submit(doomed)
        assert queue.pop(now=doomed.deadline + 1.0) is None
        assert doomed.status == EXPIRED
        assert queue.reaped_expired == 1

    def test_cancel_after_terminal_is_a_noop(self):
        request = _request()
        request.fail(RuntimeError("boom"))
        assert request.status == FAILED
        assert not request.cancel()
        assert request.status == FAILED


class TestShutdown:
    def test_submit_after_close_raises_server_closed(self):
        queue = AdmissionQueue()
        queue.close()
        assert queue.closed
        with pytest.raises(ServerClosed):
            queue.submit(_request())

    def test_close_without_drain_fails_everything_queued(self):
        queue = AdmissionQueue()
        requests = [_request() for _ in range(3)]
        for request in requests:
            queue.submit(request)
        queue.close(drain=False)
        assert len(queue) == 0
        for request in requests:
            assert request.done
            with pytest.raises(ServerClosed):
                request.result(timeout=0)

    def test_close_with_drain_keeps_queued_work(self):
        queue = AdmissionQueue()
        request = _request()
        queue.submit(request)
        queue.close(drain=True)
        assert len(queue) == 1
        assert queue.pop() is request  # the scheduler can still finish it

    def test_wait_for_work_wakes_on_close(self):
        queue = AdmissionQueue()
        queue.close()
        assert queue.wait_for_work(timeout=0.001)

    def test_wait_for_work_sees_queued_item_immediately(self):
        queue = AdmissionQueue()
        queue.submit(_request())
        assert queue.wait_for_work(timeout=0)
