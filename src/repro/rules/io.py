"""Rule-set persistence: save/load as versioned JSON files.

Rule sets are the artifact operators actually maintain -- the "logic
plug-ins" that repurpose a model.  The JSON layout::

    {
      "format": "lejit-rules/1",
      "name": "netnomos-imputation",
      "rules": [
        {"name": "R2", "kind": "sum", "source": "paper",
         "description": "...", "formula": {...}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..smt.serialize import formula_from_dict, formula_to_dict
from .dsl import Rule, RuleSet

__all__ = ["save_rules", "load_rules", "rules_to_json", "rules_from_json"]

_FORMAT = "lejit-rules/1"


def rules_to_json(rules: RuleSet) -> str:
    payload = {
        "format": _FORMAT,
        "name": rules.name,
        "rules": [
            {
                "name": rule.name,
                "kind": rule.kind,
                "source": rule.source,
                "description": rule.description,
                "formula": formula_to_dict(rule.formula),
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def rules_from_json(text: str) -> RuleSet:
    payload = json.loads(text)
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"unsupported rule file format {payload.get('format')!r}"
        )
    rules = RuleSet(name=str(payload.get("name", "ruleset")))
    for entry in payload.get("rules", []):
        rules.add(
            Rule(
                name=str(entry["name"]),
                formula=formula_from_dict(entry["formula"]),
                kind=str(entry.get("kind", "generic")),
                source=str(entry.get("source", "manual")),
                description=str(entry.get("description", "")),
            )
        )
    return rules


def save_rules(rules: RuleSet, path: Union[str, Path]) -> None:
    Path(path).write_text(rules_to_json(rules))


def load_rules(path: Union[str, Path]) -> RuleSet:
    return rules_from_json(Path(path).read_text())
