"""The JIT enforcer: solver-guided token-by-token generation.

This is the paper's contribution.  For each record variable, in generation
order:

1. ask the feasibility oracle for the variable's feasible set given the
   rules and every value generated so far (dynamic partial instantiation);
2. build a :class:`DigitTransitionSystem` over that set and let the LM
   sample the literal character by character, masking inadmissible
   characters (minimal invasiveness: admissible characters keep the LM's
   own probabilities, renormalized);
3. at the literal boundary, *confirm* with the solver that the value admits
   a rule-compliant completion (lookahead).  A refuted value is removed
   from the feasible set and the literal is resampled; after bounded
   retries the solver's own model value is emitted (forced step).

The final record is rule-compliant by construction whenever the oracle's
``confirm`` is exact (the default hybrid/SMT tiers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import variable_bounds
from ..data.telemetry import COARSE_FIELDS, TelemetryConfig, fine_field
from ..lm.base import LanguageModel
from ..lm.sampler import DeadEndError, SampleTrace, sample_tokens
from ..rules.dsl import RuleSet
from .feasible import (
    FeasibilityOracle,
    HybridOracle,
    InfeasibleRecordError,
    IntervalOracle,
    SmtOracle,
)
from .transition import SEPARATOR, DigitTransitionSystem, FeasibleSet

__all__ = ["EnforcerConfig", "EnforcementTrace", "JitEnforcer"]

_ORACLES = {"hybrid": HybridOracle, "smt": SmtOracle, "interval": IntervalOracle}


class _StrictRetryExhausted(RuntimeError):
    """Internal: the optimistic phase could not place a variable."""


@dataclass
class EnforcerConfig:
    oracle: str = "hybrid"  # hybrid | smt | interval (DESIGN.md ablation)
    max_var_retries: int = 6
    temperature: float = 1.0
    max_literal_digits: int = 6
    seed: Optional[int] = None
    # Optimistic two-phase generation (hybrid tier only): phase 1 masks with
    # interval propagation alone and audits the finished record exactly;
    # only records failing the audit re-generate under per-variable SMT
    # confirmation.  Preserves the compliance guarantee at a fraction of the
    # solver cost because the fast phase almost always succeeds.
    optimistic: bool = True

    def __post_init__(self) -> None:
        if self.oracle not in _ORACLES:
            raise ValueError(f"unknown oracle tier {self.oracle!r}")


@dataclass
class EnforcementTrace:
    """Aggregated guidance statistics (the minimal-invasiveness evidence)."""

    records: int = 0
    sample: SampleTrace = field(default_factory=SampleTrace)
    var_retries: int = 0
    solver_forced_vars: int = 0
    fallback_records: int = 0  # records generated under a fallback rule tier
    infeasible_records: int = 0  # records infeasible under every tier
    phase2_records: int = 0  # optimistic phase failed; re-ran with full SMT
    wall_time: float = 0.0

    def guidance_rate(self) -> float:
        """Fraction of steps where masking actually pruned model mass."""
        if self.sample.steps == 0:
            return 0.0
        return self.sample.masked_steps / self.sample.steps

    def diversion_rate(self) -> float:
        if self.sample.steps == 0:
            return 0.0
        return self.sample.diverted_steps / self.sample.steps


class JitEnforcer:
    """Wraps any :class:`LanguageModel` with JIT logic enforcement."""

    def __init__(
        self,
        model: LanguageModel,
        rules: RuleSet,
        telemetry_config: Optional[TelemetryConfig] = None,
        config: Optional[EnforcerConfig] = None,
        fallback_rules: Sequence[RuleSet] = (),
        bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
    ):
        self.model = model
        self.rules = rules
        self.telemetry_config = telemetry_config or TelemetryConfig()
        self.config = config or EnforcerConfig()
        self.bounds = dict(bounds or variable_bounds(self.telemetry_config))
        oracle_cls = _ORACLES[self.config.oracle]
        self._tiers: List[Tuple[RuleSet, FeasibilityOracle]] = [
            (rules, oracle_cls(rules, self.bounds))
        ]
        for fallback in fallback_rules:
            self._tiers.append((fallback, oracle_cls(fallback, self.bounds)))
        self._rng = np.random.default_rng(self.config.seed)
        self._audit_cache: Dict[Tuple, RuleSet] = {}
        self.trace = EnforcementTrace()

    # -- record-level API ------------------------------------------------------

    def impute(
        self,
        coarse: Mapping[str, int],
        context: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Generate the fine-grained values given coarse counters.

        ``context`` carries extra fixed variables the rules may reference
        but the record does not serialize -- e.g. ``prev_*`` variables for
        temporal cross-window rules (the Section 5 extension).
        """
        window = self.telemetry_config.window
        prompt = (
            " ".join(str(int(coarse[name])) for name in COARSE_FIELDS) + ">"
        )
        fine_names = [fine_field(t) for t in range(window)]
        fixed = {name: int(coarse[name]) for name in COARSE_FIELDS}
        for name, value in (context or {}).items():
            fixed[name] = int(value)
        values = self._generate_record(
            fixed=fixed,
            prompt_text=prompt,
            variables=fine_names,
        )
        return values

    def synthesize(
        self, context: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        """Generate a full record unconditionally (the synthesis task).

        ``context`` works as in :meth:`impute` (extra fixed variables for
        temporal rules; not part of the serialized record).
        """
        window = self.telemetry_config.window
        names = list(COARSE_FIELDS) + [fine_field(t) for t in range(window)]
        fixed = {name: int(value) for name, value in (context or {}).items()}
        return self._generate_record(fixed=fixed, prompt_text="", variables=names)

    # -- generation engine -----------------------------------------------------

    def _separator_char(self, variable: str, variables: Sequence[str]) -> str:
        index = variables.index(variable)
        if index == len(variables) - 1:
            return "\n"
        if variable == COARSE_FIELDS[-1]:
            return ">"
        return " "

    def _generate_record(
        self,
        fixed: Mapping[str, int],
        prompt_text: str,
        variables: Sequence[str],
    ) -> Dict[str, int]:
        start_time = time.perf_counter()
        self.trace.records += 1
        try:
            if self.config.optimistic and self.config.oracle == "hybrid":
                values = self._try_optimistic(fixed, prompt_text, variables)
                if values is not None:
                    return values
                self.trace.phase2_records += 1
            oracle, _ = self._begin_with_fallback(fixed)
            return self._run_generation(
                oracle, fixed, prompt_text, variables, strict=False
            )
        finally:
            self.trace.wall_time += time.perf_counter() - start_time

    def _try_optimistic(
        self,
        fixed: Mapping[str, int],
        prompt_text: str,
        variables: Sequence[str],
    ) -> Optional[Dict[str, int]]:
        """Phase 1: interval-only masking, exact audit at the end."""
        for tier_index, (rules, oracle) in enumerate(self._tiers):
            interval_oracle = oracle.interval  # type: ignore[attr-defined]
            try:
                interval_oracle.begin_record(fixed)
                values = self._run_generation(
                    interval_oracle, fixed, prompt_text, variables, strict=True
                )
            except InfeasibleRecordError:
                continue  # truly infeasible prefix: try the next rule tier
            except _StrictRetryExhausted:
                return None  # maybe interval incompleteness: go to SMT phase
            if self._auditable(rules, values).compliant(values):
                if tier_index > 0:
                    self.trace.fallback_records += 1
                return values
            return None  # audit failed: fall through to the SMT phase
        return None

    def _auditable(self, rules: RuleSet, values: Mapping[str, int]) -> RuleSet:
        """Rules whose variables are all assigned in ``values``.

        Rules referencing variables outside the record (e.g. ``prev_*``
        context absent on the first window of a sequence) are not binding
        on this record and cannot be evaluated against it.
        """
        key = (id(rules), frozenset(values))
        cached = self._audit_cache.get(key)
        if cached is None:
            cached = rules.restricted_to(list(values))
            self._audit_cache[key] = cached
        return cached

    def _run_generation(
        self,
        oracle: FeasibilityOracle,
        fixed: Mapping[str, int],
        prompt_text: str,
        variables: Sequence[str],
        strict: bool,
    ) -> Dict[str, int]:
        tokenizer = self.model.tokenizer
        ids = tokenizer.encode(prompt_text)
        values: Dict[str, int] = dict(fixed)
        all_names = list(fixed) + list(variables)
        for name in variables:
            value, new_ids = self._generate_variable(
                oracle, name, ids, self._separator_char(name, all_names), strict
            )
            values[name] = value
            ids = new_ids
        return values

    def _begin_with_fallback(
        self, fixed: Mapping[str, int]
    ) -> Tuple[FeasibilityOracle, RuleSet]:
        for tier_index, (rules, oracle) in enumerate(self._tiers):
            try:
                oracle.begin_record(fixed)
            except InfeasibleRecordError:
                continue
            if tier_index > 0:
                self.trace.fallback_records += 1
            return oracle, rules
        self.trace.infeasible_records += 1
        raise InfeasibleRecordError(
            f"every rule tier is infeasible for fixed values {dict(fixed)}"
        )

    def _generate_variable(
        self,
        oracle: FeasibilityOracle,
        name: str,
        ids: List[int],
        separator_char: str,
        strict: bool = False,
    ) -> Tuple[int, List[int]]:
        tokenizer = self.model.tokenizer
        separator_id = tokenizer.id_of(separator_char)
        feasible = oracle.feasible_set(name)
        for _ in range(self.config.max_var_retries):
            if feasible.is_empty():
                break
            system = DigitTransitionSystem(
                feasible, max_digits=min(self.config.max_literal_digits,
                                         len(str(feasible.max_value))),
            )
            attempt = self._sample_literal(system, ids, separator_id)
            if attempt is None:
                break  # model had no admissible path; go force a value
            value, new_ids = attempt
            if oracle.confirm(name, value):
                oracle.fix(name, value)
                return value, new_ids
            self.trace.var_retries += 1
            feasible = feasible.remove(value)
        if strict:
            # Optimistic phase: never force -- bail out to the SMT phase.
            raise _StrictRetryExhausted(name)
        # Forced fallback: take the solver's model value for this variable.
        value = self._forced_value(oracle, name, feasible)
        oracle.fix(name, value)
        self.trace.solver_forced_vars += 1
        literal_ids = [tokenizer.id_of(c) for c in str(value)] + [separator_id]
        return value, ids + literal_ids

    def _sample_literal(
        self,
        system: DigitTransitionSystem,
        ids: List[int],
        separator_id: int,
    ) -> Optional[Tuple[int, List[int]]]:
        """Sample one literal under transition-system masking."""
        tokenizer = self.model.tokenizer
        base_len = len(ids)

        def mask_hook(prefix_ids: Sequence[int]):
            prefix = tokenizer.decode(prefix_ids[base_len:])
            allowed_chars = system.allowed_next(prefix)
            allowed_ids = set()
            for char in allowed_chars:
                if char == SEPARATOR:
                    allowed_ids.add(separator_id)
                else:
                    allowed_ids.add(tokenizer.id_of(char))
            return allowed_ids

        try:
            generated = sample_tokens(
                self.model,
                ids,
                stop_id=separator_id,
                max_new_tokens=system.max_digits + 1,
                mask_hook=mask_hook,
                temperature=self.config.temperature,
                rng=self._rng,
                trace=self.trace.sample,
            )
        except DeadEndError:
            return None
        if not generated or generated[-1] != separator_id:
            return None  # ran out of budget without closing the literal
        literal = tokenizer.decode(generated[:-1])
        if not literal:
            return None
        return int(literal), ids + generated

    def _forced_value(
        self,
        oracle: FeasibilityOracle,
        name: str,
        feasible: FeasibleSet,
    ) -> int:
        if isinstance(oracle, (SmtOracle, HybridOracle)):
            return int(oracle.any_model()[name])
        # Interval tier has no exact model; fall back to the feasible set.
        if not feasible.is_empty():
            return feasible.min_value
        low, _ = self.bounds[name]
        return low
