"""A CDCL SAT solver (conflict-driven clause learning).

Minisat-style architecture: two-watched-literal propagation, first-UIP
conflict analysis with clause learning, exponential VSIDS activities, phase
saving, and Luby restarts.  Supports incremental use: clauses can be added
between calls and ``solve`` accepts assumption literals (used by the DPLL(T)
layer for push/pop reasoning without rebuilding the instance).

Variables are positive integers 1..n; literals are signed integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .budget import BudgetMeter

__all__ = ["SatSolver", "SatResult"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass
class SatResult:
    satisfiable: bool
    model: Optional[Dict[int, bool]] = None  # var -> value (only when SAT)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    unknown: bool = False  # work budget exhausted; NOT a proof of UNSAT


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ..."""
    x = i - 1  # 0-based position
    size, level = 1, 0
    while size < x + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        level -= 1
        x %= size
    return 1 << level


class _Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """Incremental CDCL solver over integer literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._watches: Dict[int, List[_Clause]] = {}
        self._assign: List[int] = [_UNASSIGNED]  # index 0 unused
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._phase: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._unsat = False  # set when an empty clause is added
        self._conflicts_total = 0
        self._decisions_total = 0
        self._propagations_total = 0

    # -- public API ----------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        while self._num_vars < n:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._phase.append(False)
            self._activity.append(0.0)
            self._watches.setdefault(self._num_vars, [])
            self._watches.setdefault(-self._num_vars, [])

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause at decision level 0."""
        self._backtrack(0)
        seen = set()
        simplified: List[int] = []
        for lit in literals:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            self.ensure_vars(abs(lit))
            value = self._lit_value(lit)
            if value == _TRUE and self._level[abs(lit)] == 0:
                return  # already satisfied forever
            if value == _FALSE and self._level[abs(lit)] == 0:
                continue  # literal is dead
            simplified.append(lit)
        if not simplified:
            self._unsat = True
            return
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._attach(_Clause(simplified))

    def solve(
        self,
        assumptions: Sequence[int] = (),
        meter: Optional[BudgetMeter] = None,
    ) -> SatResult:
        """Search for a model extending ``assumptions``.

        The solver state (learned clauses, activities, phases) persists across
        calls; the trail is reset to level 0 on entry and exit.  When a
        ``meter`` is supplied, every conflict and branch decision is charged
        against its budget; exhaustion yields ``SatResult(unknown=True)``
        instead of an answer.
        """
        self._backtrack(0)
        if self._unsat or self._propagate() is not None:
            return self._result(False)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        restarts = 0
        conflicts_since_restart = 0
        limit = _luby(1) * 64
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts_total += 1
                conflicts_since_restart += 1
                if meter is not None and not meter.charge("conflicts"):
                    self._backtrack(0)
                    return self._result_unknown()
                if self._decision_level() == 0:
                    return self._result(False)
                learned, backtrack_level = self._analyze(conflict)
                # Never backtrack past the assumption levels' prefix blindly;
                # _analyze already returns a level >= 0, and assumptions are
                # re-established below after any backtrack.
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return self._result(False)
                else:
                    clause = _Clause(learned, learned=True)
                    self._attach(clause)
                    self._learned.append(clause)
                    self._enqueue(learned[0], clause)
                self._decay_activities()
                continue
            if conflicts_since_restart >= limit:
                restarts += 1
                conflicts_since_restart = 0
                limit = _luby(restarts + 1) * 64
                self._backtrack(0)
                self._reduce_learned()
                continue
            # Re-establish any assumption not yet satisfied.
            next_assumption = None
            for lit in assumptions:
                value = self._lit_value(lit)
                if value == _FALSE:
                    return self._result(False)
                if value == _UNASSIGNED:
                    next_assumption = lit
                    break
            if next_assumption is not None:
                self._decide(next_assumption)
                continue
            decision = self._pick_branch()
            if decision == 0:
                model = {
                    v: self._assign[v] == _TRUE for v in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                return self._result(True, model)
            if meter is not None and not meter.charge("decisions"):
                self._backtrack(0)
                return self._result_unknown()
            self._decide(decision)

    # -- internals -----------------------------------------------------------

    def _result(self, sat: bool, model: Optional[Dict[int, bool]] = None) -> SatResult:
        return SatResult(
            satisfiable=sat,
            model=model,
            conflicts=self._conflicts_total,
            decisions=self._decisions_total,
            propagations=self._propagations_total,
        )

    def _result_unknown(self) -> SatResult:
        return SatResult(
            satisfiable=False,
            model=None,
            conflicts=self._conflicts_total,
            decisions=self._decisions_total,
            propagations=self._propagations_total,
            unknown=True,
        )

    def _lit_value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _decide(self, lit: int) -> None:
        self._decisions_total += 1
        self._trail_lim.append(len(self._trail))
        self._enqueue(lit, None)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self._propagations_total += 1
            false_lit = -lit
            watchers = self._watches[false_lit]
            kept: List[_Clause] = []
            conflict: Optional[_Clause] = None
            for idx, clause in enumerate(watchers):
                lits = clause.literals
                # Ensure the false literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == _TRUE:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    kept.extend(watchers[idx + 1 :])
                    break
            self._watches[false_lit] = kept
            if conflict is not None:
                self._queue_head = len(self._trail)
                return conflict
        return None

    def _analyze(self, conflict: _Clause) -> tuple:
        """First-UIP conflict analysis; returns (learned clause, bt level)."""
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        prop_lit = 0  # the literal whose reason clause is being expanded
        index = len(self._trail) - 1
        reason: Optional[_Clause] = conflict
        current_level = self._decision_level()
        while True:
            assert reason is not None
            if reason.learned:
                self._bump_clause(reason)
            for clause_lit in reason.literals:
                if clause_lit == prop_lit:
                    continue
                var = abs(clause_lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            prop_lit = self._trail[index]
            var = abs(prop_lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter <= 0:
                break
            reason = self._reason[var]
        learned[0] = -prop_lit
        # Clause minimization: drop literals implied by the rest.
        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Find the second-highest level to backtrack to.
        max_idx = 1
        for k in range(2, len(learned)):
            if self._level[abs(learned[k])] > self._level[abs(learned[max_idx])]:
                max_idx = k
        learned[1], learned[max_idx] = learned[max_idx], learned[1]
        return learned, self._level[abs(learned[1])]

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        marked = set(abs(l) for l in learned)
        result = [learned[0]]
        for lit in learned[1:]:
            reason = self._reason[abs(lit)]
            if reason is None:
                result.append(lit)
                continue
            redundant = all(
                abs(other) in marked or self._level[abs(other)] == 0
                for other in reason.literals
                if other != -lit
            )
            if not redundant:
                result.append(lit)
        return result

    def _backtrack(self, level: int) -> None:
        while self._trail_lim and len(self._trail_lim) > level:
            boundary = self._trail_lim.pop()
            while len(self._trail) > boundary:
                lit = self._trail.pop()
                var = abs(lit)
                self._assign[var] = _UNASSIGNED
                self._reason[var] = None
        self._queue_head = min(self._queue_head, len(self._trail))

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.literals[0]].append(clause)
        self._watches[clause.literals[1]].append(clause)
        if not clause.learned:
            self._clauses.append(clause)

    def _pick_branch(self) -> int:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var == 0:
            return 0
        return best_var if self._phase[best_var] else -best_var

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= 0.999

    def _reduce_learned(self) -> None:
        """Drop the least active half of long learned clauses."""
        if len(self._learned) < 2000:
            return
        self._learned.sort(key=lambda c: c.activity)
        keep_from = len(self._learned) // 2
        dropped = set(id(c) for c in self._learned[:keep_from] if len(c.literals) > 2)
        if not dropped:
            return
        self._learned = [c for c in self._learned if id(c) not in dropped]
        for lit in list(self._watches):
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in dropped
            ]
