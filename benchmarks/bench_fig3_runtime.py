"""Fig. 3 (right): runtime comparison -- rejection sampling vs LeJIT.

Paper: rejection needs >2 days for 30K imputations while LeJIT finishes in
5 hours (>10x speedup); vanilla is fastest but non-compliant.  We reproduce
the ordering and the ratio at a scaled-down record count.
"""

import pytest

from repro.bench import bench_n, run_imputation

from conftest import write_result


@pytest.mark.benchmark(group="fig3-runtime")
def test_fig3_runtime_comparison(benchmark, context, results_dir):
    count = bench_n()

    def experiment():
        return run_imputation(
            context, count, methods=("vanilla", "rejection", "lejit")
        )

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    vanilla = results["vanilla"].wall_time
    rejection = results["rejection"].wall_time
    lejit = results["lejit"].wall_time

    speedup = rejection / max(lejit, 1e-9)
    lines = [
        "Fig. 3 (right) - wall-clock for the same imputation workload",
        f"records per method: {count}",
        "",
        f"vanilla     {vanilla:8.2f} s",
        f"lejit       {lejit:8.2f} s",
        f"rejection   {rejection:8.2f} s",
        "",
        f"rejection / lejit speedup: {speedup:.1f}x (paper reports >10x)",
    ]
    write_result(results_dir, "fig3_runtime", "\n".join(lines))

    assert vanilla < lejit, "guidance has a cost over free generation"
    assert lejit < rejection, "LeJIT must beat rejection sampling"
