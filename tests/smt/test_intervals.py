"""Interval propagation: soundness (never prunes a solution) + precision."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.intervals import Interval, propagate
from repro.smt.lincon import LinCon

VARS = ["x", "y", "z"]


def bounded(low=-6, high=6):
    cons = []
    for name in VARS:
        cons.append(LinCon.make({name: 1}, -high, "<="))
        cons.append(LinCon.make({name: -1}, low, "<="))
    return cons


class TestInterval:
    def test_contains(self):
        interval = Interval(0, 5)
        assert interval.contains(0) and interval.contains(5)
        assert not interval.contains(-1) and not interval.contains(6)

    def test_half_open(self):
        assert Interval(None, 5).contains(-1000)
        assert not Interval(None, 5).contains(6)
        assert Interval(3, None).contains(1000)

    def test_empty(self):
        assert Interval(5, 3).is_empty()
        assert not Interval(5, 5).is_empty()

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(None, 10).intersect(Interval(5, None)) == Interval(5, 10)

    def test_width(self):
        assert Interval(2, 5).width() == 4
        assert Interval(None, 5).width() is None
        assert Interval(5, 2).width() == 0


class TestPropagation:
    def test_simple_bound(self):
        result = propagate([LinCon.make({"x": 1}, -5, "<=")])
        assert result.feasible
        assert result.domain["x"].upper == 5

    def test_equality_propagates_both_ways(self):
        # x + y == 10, 0 <= x <= 4  =>  6 <= y <= 10.
        cons = [
            LinCon.make({"x": 1, "y": 1}, -10, "=="),
            LinCon.make({"x": 1}, -4, "<="),
            LinCon.make({"x": -1}, 0, "<="),
        ]
        result = propagate(cons)
        assert result.feasible
        assert result.domain["y"].lower == 6
        assert result.domain["y"].upper == 10

    def test_conflict_detected(self):
        cons = [
            LinCon.make({"x": 1}, -2, "<="),
            LinCon.make({"x": -1}, 3, "<="),  # x >= 3
        ]
        assert not propagate(cons).feasible

    def test_coefficient_division_rounds_correctly(self):
        # 3x <= 10  =>  x <= 3;  -2x <= -5  =>  x >= 3 (ceil 2.5).
        cons = [
            LinCon.make({"x": 3}, -10, "<="),
            LinCon.make({"x": -2}, 5, "<="),
        ]
        result = propagate(cons)
        assert result.feasible
        assert result.domain["x"].lower == 3
        assert result.domain["x"].upper == 3

    def test_chain_propagation(self):
        # x == y + 1, y == z + 1, z == 5.
        cons = [
            LinCon.make({"x": 1, "y": -1}, -1, "=="),
            LinCon.make({"y": 1, "z": -1}, -1, "=="),
            LinCon.make({"z": 1}, -5, "=="),
        ]
        result = propagate(cons)
        assert result.domain["x"].lower == result.domain["x"].upper == 7

    def test_disequality_shaves_endpoint(self):
        cons = [
            LinCon.make({"x": 1}, -5, "<="),
            LinCon.make({"x": -1}, 0, "<="),
            LinCon.make({"x": 1}, 0, "!="),  # x != 0
        ]
        result = propagate(cons)
        assert result.domain["x"].lower == 1

    def test_disequality_refutes_pinned(self):
        cons = [
            LinCon.make({"x": 1}, -3, "=="),
            LinCon.make({"x": 1}, -3, "!="),
        ]
        assert not propagate(cons).feasible

    def test_initial_domain_respected(self):
        result = propagate(
            [LinCon.make({"x": 1}, -100, "<=")],
            initial={"x": Interval(2, 7)},
        )
        assert result.domain["x"].lower == 2
        assert result.domain["x"].upper == 7

    def test_ground_false_constraint(self):
        assert not propagate([LinCon.make({}, 1, "<=")]).feasible


con_strategy = st.builds(
    lambda coeffs, const, op: LinCon.make(dict(zip(VARS, coeffs)), const, op),
    st.lists(st.integers(-3, 3), min_size=3, max_size=3),
    st.integers(-8, 8),
    st.sampled_from(["<=", "==", "!="]),
)


@given(st.lists(con_strategy, min_size=1, max_size=5))
@settings(max_examples=120, deadline=None)
def test_soundness_no_solution_pruned(random_cons):
    cons = bounded() + random_cons
    result = propagate(cons)
    solutions = []
    for values in itertools.product(range(-6, 7), repeat=len(VARS)):
        assignment = dict(zip(VARS, values))
        if all(c.holds(assignment) for c in cons):
            solutions.append(assignment)
    if not result.feasible:
        assert not solutions
    else:
        for assignment in solutions:
            for name, value in assignment.items():
                if name in result.domain:
                    assert result.domain[name].contains(value)
