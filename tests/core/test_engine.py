"""Batched engine tests: determinism parity, fault isolation, cache soundness.

The engine's contract is that batching is *invisible* in the output: for
the same seed and submission order, every record is byte-identical at any
batch size -- including batch 1 versus the legacy synchronous driver --
and the deterministic trace counters agree exactly.  The speedup comes
only from shared/amortized work (batched LM calls, the cross-lane oracle
cache, pooled solvers), never from changed behavior.
"""

import numpy as np
import pytest

from repro.core import (
    EnforcementEngine,
    EnforcerConfig,
    JitEnforcer,
    OracleCache,
)
from repro.core.feasible import HybridOracle, IntervalOracle, SmtOracle
from repro.data import TelemetryConfig, build_dataset, variable_bounds
from repro.errors import InfeasibleRecord
from repro.lm import NgramLM
from repro.rules import domain_bound_rules, paper_rules


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=5
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model, paper_rules(dataset.config)


def _enforcer(dataset, model, rules, seed=13):
    return JitEnforcer(
        model,
        rules,
        dataset.config,
        EnforcerConfig(seed=seed),
        fallback_rules=[domain_bound_rules(dataset.config)],
    )


class TestDeterminismParity:
    """ISSUE acceptance: byte-identical records at every batch size."""

    def test_impute_parity_across_batch_sizes(self, setting):
        dataset, model, rules = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:12]]

        legacy = _enforcer(dataset, model, rules)
        reference = [legacy.impute_record(c) for c in coarse]

        for batch_size in (1, 4, 16):
            enforcer = _enforcer(dataset, model, rules)
            engine = EnforcementEngine(enforcer, batch_size=batch_size)
            outcomes = engine.impute_many(coarse)
            assert [o.values for o in outcomes] == [
                r.values for r in reference
            ], f"values diverged at batch_size={batch_size}"
            assert [o.stage for o in outcomes] == [r.stage for r in reference]
            assert (
                enforcer.trace.comparable_counters()
                == legacy.trace.comparable_counters()
            ), f"trace counters diverged at batch_size={batch_size}"

    def test_synthesize_parity_across_batch_sizes(self, setting):
        dataset, model, rules = setting
        count = 10

        legacy = _enforcer(dataset, model, rules)
        reference = [legacy.synthesize_record() for _ in range(count)]

        for batch_size in (1, 4, 16):
            enforcer = _enforcer(dataset, model, rules)
            engine = EnforcementEngine(enforcer, batch_size=batch_size)
            outcomes = engine.synthesize_many(count)
            assert [o.values for o in outcomes] == [
                r.values for r in reference
            ], f"values diverged at batch_size={batch_size}"
            assert (
                enforcer.trace.comparable_counters()
                == legacy.trace.comparable_counters()
            )

    def test_no_solver_forcing_on_clean_runs(self, setting):
        """Parity runs stay on the happy path: no forced values, no budget."""
        dataset, model, rules = setting
        enforcer = _enforcer(dataset, model, rules)
        engine = EnforcementEngine(enforcer, batch_size=8)
        engine.impute_many([w.coarse() for w in dataset.test_windows()[:8]])
        assert enforcer.trace.solver_forced_vars == 0
        assert enforcer.trace.budget_exhaustions == 0

    def test_batching_reduces_lm_calls(self, setting):
        dataset, model, rules = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:12]]
        calls = {}
        for batch_size in (1, 4):
            enforcer = _enforcer(dataset, model, rules)
            engine = EnforcementEngine(enforcer, batch_size=batch_size)
            engine.impute_many(coarse)
            calls[batch_size] = engine.stats.lm_calls
            assert engine.stats.completed == len(coarse)
        # Lock-stepping 4 lanes must need far fewer batched calls than 1.
        assert calls[4] * 2 < calls[1]


class TestEngineIsolation:
    def test_infeasible_record_never_corrupts_batch_mates(self, setting):
        """One poisoned slot fails; every other record stays byte-identical."""
        dataset, model, rules = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:6]]
        poison_index = 3
        # R3 needs a 30+ burst with congestion, R2 caps the sum at 20: no
        # fallback tiers, so this prompt has no feasible completion at all.
        poisoned = list(coarse)
        poisoned[poison_index] = {"total": 20, "cong": 3, "retx": 0, "egr": 20}

        def strict_enforcer():
            return JitEnforcer(
                model, rules, dataset.config, EnforcerConfig(seed=13)
            )

        reference = []
        legacy = strict_enforcer()
        for index, prompt in enumerate(poisoned):
            if index == poison_index:
                with pytest.raises(InfeasibleRecord):
                    legacy.impute_record(prompt)
                reference.append(None)
            else:
                reference.append(legacy.impute_record(prompt))

        engine = EnforcementEngine(strict_enforcer(), batch_size=4)
        results = engine.impute_many(poisoned, return_exceptions=True)
        assert isinstance(results[poison_index], InfeasibleRecord)
        for index, result in enumerate(results):
            if index == poison_index:
                continue
            assert result.values == reference[index].values
        assert engine.stats.failed == 1
        assert engine.stats.completed == len(coarse) - 1

    def test_run_raises_first_error_without_return_exceptions(self, setting):
        dataset, model, rules = setting
        enforcer = JitEnforcer(model, rules, dataset.config, EnforcerConfig(seed=13))
        engine = EnforcementEngine(enforcer, batch_size=2)
        good = dataset.test_windows()[0].coarse()
        bad = {"total": 20, "cong": 3, "retx": 0, "egr": 20}
        with pytest.raises(InfeasibleRecord):
            engine.impute_many([good, bad, good])

    def test_summary_reports_throughput_and_cache(self, setting):
        dataset, model, rules = setting
        enforcer = _enforcer(dataset, model, rules)
        engine = EnforcementEngine(enforcer, batch_size=4)
        engine.impute_many([w.coarse() for w in dataset.test_windows()[:8]])
        summary = engine.summary()
        assert summary["completed"] == 8
        assert summary["records_per_sec"] > 0
        assert summary["batch_size"] == 4
        assert 0.0 <= summary["cache"]["hit_rate"] <= 1.0
        assert summary["solver_work"]  # non-empty counters


class TestOracleCacheSoundness:
    """Cached/pooled oracles must answer exactly like fresh ones."""

    def _records(self, dataset, count=6):
        return [w.coarse() for w in dataset.test_windows()[:count]]

    @pytest.mark.parametrize("oracle_cls", [SmtOracle, IntervalOracle, HybridOracle])
    def test_cached_pooled_oracle_matches_fresh(self, setting, oracle_cls):
        dataset, _, rules = setting
        bounds = variable_bounds(dataset.config)
        cache = OracleCache(4096)
        shared = oracle_cls(rules, bounds, cache=cache, pool_reuse=16)
        window = dataset.config.window
        # Two passes over the same prompts: the second replays every state
        # key from the cache while the fresh oracle recomputes from scratch.
        for prompt in self._records(dataset) * 2:
            fresh = oracle_cls(rules, bounds)
            shared.begin_record(prompt)
            fresh.begin_record(prompt)
            for t in range(window):
                name = f"I{t}"
                shared_set = shared.feasible_set(name)
                assert shared_set.segments == fresh.feasible_set(name).segments
                value = shared_set.min_value
                assert shared.confirm(name, value) == fresh.confirm(name, value)
                shared.fix(name, value)
                fresh.fix(name, value)
        assert cache.hits > 0  # the repeats actually exercised the cache

    def test_stale_domain_cannot_widen_after_fix(self, setting):
        """Regression: ``_domain_cache`` must die on every state change.

        A fix() narrows the propagated domain; if the pre-fix cached domain
        survived, a later feasible_set() could *widen* the admissible set
        and admit a value the solver would refute.
        """
        dataset, _, rules = setting
        bounds = variable_bounds(dataset.config)
        oracle = IntervalOracle(rules, bounds, cache=OracleCache(1024))
        prompt = self._records(dataset, 1)[0]
        oracle.begin_record(prompt)
        before = oracle.feasible_set("I1")
        assert oracle._domain_cache is not None  # populated by the query
        oracle.fix("I0", oracle.feasible_set("I0").max_value)
        assert oracle._domain_cache is None  # invalidated by the fix
        after = oracle.feasible_set("I1")
        # Narrowing only: every post-fix admissible value was admissible
        # before (the fix consumed budget from the shared sum).
        for lo, hi in after.segments:
            assert before.intersect_interval(lo, hi).segments == ((lo, hi),)

        # And adopting a cached interval snapshot must also drop any
        # resident domain: pollute the cache with an absurdly wide domain,
        # force the restore path, and verify it recomputes the true set.
        oracle.begin_record(prompt)  # istate now cached => restorable
        oracle._domain_cache = {
            name: [0, 10**9] for name in oracle._domain_cache
        }
        assert oracle._restore_istate()  # snapshot hit for this state key
        assert oracle._domain_cache is None
        assert oracle.feasible_set("I1").segments == before.segments

    def test_confirm_cache_never_stores_unknown(self, setting):
        dataset, _, rules = setting
        bounds = variable_bounds(dataset.config)
        cache = OracleCache(1024)
        oracle = SmtOracle(rules, bounds, cache=cache)
        prompt = self._records(dataset, 1)[0]
        oracle.begin_record(prompt)
        oracle.confirm_status("I0", oracle.feasible_set("I0").min_value)
        for key, value in cache._data.items():
            if key[0] == "confirm":
                assert value in ("sat", "unsat")


class TestEngineRngStability:
    def test_submission_order_pins_streams(self, setting):
        """Shuffled *submission* changes outputs; same order never does."""
        dataset, model, rules = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:6]]
        runs = []
        for _ in range(2):
            enforcer = _enforcer(dataset, model, rules)
            engine = EnforcementEngine(enforcer, batch_size=3)
            runs.append([o.values for o in engine.impute_many(coarse)])
        assert runs[0] == runs[1]

    def test_unseeded_engine_still_completes(self, setting):
        dataset, model, rules = setting
        enforcer = JitEnforcer(
            model,
            rules,
            dataset.config,
            EnforcerConfig(seed=None),
            fallback_rules=[domain_bound_rules(dataset.config)],
        )
        engine = EnforcementEngine(enforcer, batch_size=4)
        outcomes = engine.impute_many(
            [w.coarse() for w in dataset.test_windows()[:4]]
        )
        assert all(o.compliant or o.degraded for o in outcomes)
