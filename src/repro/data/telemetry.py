"""Telemetry schema: fine-grained windows and coarse-grained counters.

Mirrors the paper's imputation setting: the operator only sees
coarse-grained counters per window of ``T`` fine ticks -- total ingress
volume, ECN-marked (congestion) tick count, retransmission count and total
egress -- and wants the fine-grained per-tick ingress back.

Coarse counters are *derived from the fine series through an explicit queue
model*, so the structural rules the paper enforces (sum consistency,
bandwidth bounds, congestion implies burst) hold in the data by
construction of the physics, not by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "TelemetryConfig",
    "Window",
    "coarsen",
    "COARSE_FIELDS",
    "fine_field",
    "window_variables",
]

COARSE_FIELDS = ("total", "cong", "retx", "egr")


def fine_field(index: int) -> str:
    return f"I{index}"


def window_variables(window: int) -> Tuple[str, ...]:
    """Variable names of one record: coarse fields then fine fields."""
    return COARSE_FIELDS + tuple(fine_field(t) for t in range(window))


@dataclass(frozen=True)
class TelemetryConfig:
    window: int = 5  # fine ticks per coarse window (the paper's T)
    bandwidth: int = 60  # per-tick capacity (the paper's BW)
    drain_fraction: float = 0.7  # switch drain rate as a fraction of BW
    ecn_threshold_fraction: float = 0.5  # queue depth triggering ECN marks
    retx_probability: float = 0.35  # chance an ECN-marked tick retransmits

    @property
    def drain(self) -> int:
        return int(self.bandwidth * self.drain_fraction)

    @property
    def ecn_threshold(self) -> int:
        return int(self.bandwidth * self.ecn_threshold_fraction)

    def max_total(self) -> int:
        return self.window * self.bandwidth

    def max_egress(self) -> int:
        return self.window * self.drain


@dataclass(frozen=True)
class Window:
    """One telemetry window: the coarse counters plus the fine truth."""

    fine: Tuple[int, ...]
    total: int
    cong: int
    retx: int
    egr: int

    def coarse(self) -> Dict[str, int]:
        return {"total": self.total, "cong": self.cong, "retx": self.retx, "egr": self.egr}

    def variables(self) -> Dict[str, int]:
        values = self.coarse()
        for index, value in enumerate(self.fine):
            values[fine_field(index)] = int(value)
        return values


def coarsen(
    fine: np.ndarray,
    config: TelemetryConfig,
    rng: np.random.Generator,
    initial_queue: int = 0,
) -> Tuple[List[Window], int]:
    """Aggregate a fine ingress series into coarse windows via a queue model.

    Per tick: the queue absorbs ingress and drains at the configured rate;
    ticks whose post-arrival queue exceeds the ECN threshold are marked.
    Marked ticks retransmit with fixed probability.  Egress is the actual
    drained volume.  Returns the windows and the final queue depth (so
    successive series can be chained).
    """
    window = config.window
    usable = (len(fine) // window) * window
    queue = initial_queue
    windows: List[Window] = []
    for start in range(0, usable, window):
        chunk = fine[start : start + window]
        marks = 0
        retx = 0
        egress = 0
        for arrival in chunk:
            queue += int(arrival)
            if queue > config.ecn_threshold:
                marks += 1
                if rng.random() < config.retx_probability:
                    retx += 1
            drained = min(queue, config.drain)
            queue -= drained
            egress += drained
        windows.append(
            Window(
                fine=tuple(int(v) for v in chunk),
                total=int(chunk.sum()),
                cong=marks,
                retx=retx,
                egr=egress,
            )
        )
    return windows, queue
