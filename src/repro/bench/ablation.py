"""Ablation drivers for the design choices DESIGN.md calls out.

* solver tiers: interval-only vs hybrid vs full SMT (speed/compliance);
* lookahead: LeJIT's confirm-based lookahead vs immediate-validity masking;
* rule-set size: enforcement quality as mined families are toggled;
* invasiveness: how often masking actually changes the model's choice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import EnforcerConfig, JitEnforcer
from ..metrics import audit
from ..rules import MinerOptions, mine_rules
from .common import BenchContext

__all__ = [
    "OracleTierResult",
    "run_oracle_tiers",
    "run_rule_family_sweep",
    "run_invasiveness",
]


@dataclass
class OracleTierResult:
    tier: str
    seconds: float
    rule_violation_rate: float
    solver_forced: int
    phase2_records: int

    def row(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "seconds": round(self.seconds, 2),
            "rule_violation_%": round(100 * self.rule_violation_rate, 3),
            "forced_vars": self.solver_forced,
            "phase2_records": self.phase2_records,
        }


def run_oracle_tiers(
    context: BenchContext, count: int, seed: int = 0
) -> List[OracleTierResult]:
    """Compare the three feasibility-oracle tiers on the imputation task."""
    truths = context.test_windows(count)
    cfg = context.dataset.config
    results: List[OracleTierResult] = []
    tiers = [
        ("interval", EnforcerConfig(oracle="interval", seed=seed)),
        ("hybrid-optimistic", EnforcerConfig(oracle="hybrid", seed=seed)),
        (
            "hybrid-strict",
            EnforcerConfig(oracle="hybrid", optimistic=False, seed=seed),
        ),
        ("smt", EnforcerConfig(oracle="smt", optimistic=False, seed=seed)),
    ]
    for tier_name, enforcer_config in tiers:
        enforcer = JitEnforcer(
            context.model,
            context.imputation_rules,
            cfg,
            enforcer_config,
            fallback_rules=context.fallback_tiers(),
        )
        start = time.perf_counter()
        records = [enforcer.impute(w.coarse()) for w in truths]
        elapsed = time.perf_counter() - start
        report = audit(records, context.imputation_rules)
        results.append(
            OracleTierResult(
                tier=tier_name,
                seconds=elapsed,
                rule_violation_rate=report.rule_violation_rate,
                solver_forced=enforcer.trace.solver_forced_vars,
                phase2_records=enforcer.trace.phase2_records,
            )
        )
    return results


def run_rule_family_sweep(
    context: BenchContext, count: int, seed: int = 0
) -> List[Dict[str, object]]:
    """Enforce progressively richer mined rule sets (Fig. 3/4 insight:
    'performance improves as rule quality increases')."""
    truths = context.test_windows(count)
    cfg = context.dataset.config
    fine_names = context.fine_names
    variables = list(context.dataset.variables)
    sweeps = [
        ("bounds", MinerOptions(octagon=False, ratios=False, identities=False,
                                conditionals=False, burst_implications=False,
                                slack=2)),
        ("+identities", MinerOptions(octagon=False, ratios=False,
                                     conditionals=False,
                                     burst_implications=False, slack=2)),
        ("+octagon", MinerOptions(ratios=False, conditionals=False,
                                  burst_implications=False, slack=2)),
        ("+conditionals", MinerOptions(ratios=False,
                                       burst_implications=False, slack=2)),
        ("full", MinerOptions(slack=2)),
    ]
    rows: List[Dict[str, object]] = []
    for label, options in sweeps:
        rules = mine_rules(
            context.train_assignments,
            variables,
            options,
            fine_variables=fine_names,
            name=f"sweep-{label}",
        )
        enforcer = JitEnforcer(
            context.model,
            rules,
            cfg,
            EnforcerConfig(seed=seed),
            fallback_rules=context.fallback_tiers(),
        )
        start = time.perf_counter()
        records = [enforcer.impute(w.coarse()) for w in truths]
        elapsed = time.perf_counter() - start
        # Audit against the FULL mined set: richer enforcement should close
        # the compliance gap.
        report = audit(records, context.imputation_rules)
        errors = [
            float(
                np.mean(
                    [
                        abs(record[name] - truth.variables()[name])
                        for name in fine_names
                    ]
                )
            )
            for record, truth in zip(records, truths)
        ]
        rows.append(
            {
                "rule_set": label,
                "rules": len(rules),
                "seconds": round(elapsed, 2),
                "rule_violation_%": round(100 * report.rule_violation_rate, 2),
                "mae": round(float(np.mean(errors)), 3),
            }
        )
    return rows


def run_invasiveness(
    context: BenchContext, count: int, seed: int = 0
) -> Dict[str, float]:
    """Quantify 'a little guidance goes a long way': what fraction of steps
    did masking prune mass / change the sampled token / force a token?"""
    cfg = context.dataset.config
    enforcer = JitEnforcer(
        context.model,
        context.imputation_rules,
        cfg,
        EnforcerConfig(seed=seed),
        fallback_rules=context.fallback_tiers(),
    )
    for window in context.test_windows(count):
        enforcer.impute(window.coarse())
    sample = enforcer.trace.sample
    return {
        "steps": float(sample.steps),
        "masked_step_rate": sample.masked_steps / max(sample.steps, 1),
        "diverted_step_rate": sample.diverted_steps / max(sample.steps, 1),
        "forced_step_rate": sample.forced_steps / max(sample.steps, 1),
        "mean_pruned_mass": sample.pruned_probability / max(sample.steps, 1),
        "solver_forced_vars": float(enforcer.trace.solver_forced_vars),
    }
