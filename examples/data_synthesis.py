"""Synthetic network-data generation with LeJIT (the Section 4.2 workflow).

The *same* trained model used for imputation is repurposed as an
unconditional generator simply by swapping the rule set -- no retraining.
Compares LeJIT against the vanilla model and a tailored generator.

Run:  python examples/data_synthesis.py
"""

import numpy as np

from repro.baselines import NetShareLike
from repro.core import EnforcerConfig, JitEnforcer, RecordSampler
from repro.data import COARSE_FIELDS, build_dataset
from repro.lm import NgramLM
from repro.metrics import audit, histogram_jsd
from repro.rules import MinerOptions, domain_bound_rules, mine_rules


def main() -> None:
    dataset = build_dataset(
        num_train_racks=16, num_test_racks=4, windows_per_rack=120, seed=1
    )
    model = NgramLM(order=6).fit(dataset.train_texts())

    # Rules over the *coarse* signals only -- this is the entire difference
    # between the imputer and the generator (Section 3, "a single LLM to
    # rule them all").
    coarse_assignments = [
        {name: w.coarse()[name] for name in COARSE_FIELDS}
        for w in dataset.train_windows()
    ]
    rules = mine_rules(
        coarse_assignments, list(COARSE_FIELDS), MinerOptions(slack=2),
        name="synthesis",
    )
    print(f"mined {len(rules)} synthesis rules: {rules.summary()}")

    count = 120
    real = np.array(
        [[row[name] for name in COARSE_FIELDS] for row in coarse_assignments]
    )

    print(f"\ngenerating {count} records per method...")
    enforcer = JitEnforcer(
        model, rules, dataset.config, EnforcerConfig(seed=0),
        fallback_rules=[domain_bound_rules(dataset.config)],
    )
    sampler = RecordSampler(model, dataset.config, seed=0)
    netshare = NetShareLike().fit(real)

    batches = {
        "vanilla": [sampler.synthesize_raw() for _ in range(count)],
        "lejit": [enforcer.synthesize() for _ in range(count)],
        "netshare": [
            dict(zip(COARSE_FIELDS, map(int, row)))
            for row in netshare.sample(count, np.random.default_rng(0))
        ],
    }

    print(f"\n{'method':10s}{'jsd(mean)':>11s}{'violation %':>13s}")
    for name, records in batches.items():
        rows = np.array([[r[f] for f in COARSE_FIELDS] for r in records])
        jsd_mean = np.mean(
            [histogram_jsd(real[:, i], rows[:, i]) for i in range(len(COARSE_FIELDS))]
        )
        report = audit(records, rules)
        print(
            f"{name:10s}{jsd_mean:>11.4f}"
            f"{100 * report.rule_violation_rate:>13.2f}"
        )

    print("\nsample LeJIT records (coarse part):")
    for record in batches["lejit"][:5]:
        print("  ", {name: record[name] for name in COARSE_FIELDS})


if __name__ == "__main__":
    main()
