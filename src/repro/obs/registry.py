"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` replaces the repo's previous scatter of private
stat dicts (``EnforcementTrace`` fields, ``OracleCache.stats``, the serving
scheduler's ad-hoc ints): components either own registry instruments
directly (hot counters/histograms) or register a *collector* -- a callback
that renders their existing state into samples at scrape time.  Collectors
are registered against an owner object held by weak reference, so transient
components (test enforcers, short-lived schedulers) vanish from exposition
when they are garbage collected instead of accumulating forever.

Naming convention (see DESIGN.md "Observability"): ``repro_<component>_
<metric>[_total|_ms|...]``, labels only for bounded enumerations (ladder
stage, solver resource).  Counters are monotonic; gauges are point-in-time;
histograms have fixed, registration-time bucket bounds.

The registry is thread-safe for registration and collection; instrument
*updates* (``inc``/``observe``) are plain attribute math, relying on the
GIL exactly like the counters they replace.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Sample",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "STREAM_LAG_BUCKETS_MS",
    "parse_buckets",
]

Labels = Tuple[Tuple[str, str], ...]

#: Shared bucket bounds for request/step latencies in milliseconds.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Bucket bounds for stream watermark/emission lag in milliseconds.  Stream
#: lag is dominated by the event-time lateness bound (seconds), not by
#: per-record compute, so the range extends far coarser than the request
#: latency defaults: sub-millisecond resolution is useless there, minutes
#: of backlog are not.
STREAM_LAG_BUCKETS_MS = (
    1.0, 5.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10_000.0, 30_000.0, 60_000.0, 300_000.0,
)


def parse_buckets(text: str) -> Tuple[float, ...]:
    """Parse a comma-separated bucket-bound list (CLI ``--latency-buckets``).

    Bounds must be positive, strictly increasing floats -- the same
    constraint :class:`Histogram` enforces at registration, surfaced here
    with a parse-time error message.
    """
    try:
        bounds = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"bucket bounds must be numbers: {text!r}")
    if not bounds:
        raise ValueError("bucket list is empty")
    if list(bounds) != sorted(set(bounds)) or bounds[0] <= 0:
        raise ValueError(
            f"bucket bounds must be positive and strictly increasing: {text!r}"
        )
    return bounds


def _labels_key(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exposition sample: a (name, labels, value) triple plus family
    metadata.  Collectors return these; instruments render to these."""

    name: str
    value: float
    labels: Labels = ()
    type: str = "gauge"  # counter | gauge | histogram (histograms via raw samples)
    help: str = ""

    @staticmethod
    def counter(name: str, value: float, labels: Optional[Dict[str, str]] = None,
                help: str = "") -> "Sample":
        return Sample(name, float(value), _labels_key(labels), "counter", help)

    @staticmethod
    def gauge(name: str, value: float, labels: Optional[Dict[str, str]] = None,
              help: str = "") -> "Sample":
        return Sample(name, float(value), _labels_key(labels), "gauge", help)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative on exposition, like Prometheus).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit +Inf bucket closes the range.  ``observe`` is a bisect plus
    two adds -- cheap enough for per-record paths, and per-step paths only
    observe when observability is active.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]):
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or list(cleaned) != sorted(set(cleaned)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.bounds = cleaned
        self.counts = [0] * (len(cleaned) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


@dataclass
class _Family:
    type: str
    help: str
    instruments: Dict[Labels, object] = field(default_factory=dict)


class MetricsRegistry:
    """Named instrument families plus weakly-owned collectors.

    Instrument accessors are get-or-create: asking twice for the same
    (name, labels) returns the same object, so independent call sites can
    share one counter.  Re-registering a name with a different type or
    bucket layout is an error -- silently diverging families would corrupt
    exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: Dict[str, Tuple[Optional[weakref.ref], Callable]] = {}

    # -- instruments -----------------------------------------------------------

    def _instrument(self, name: str, type_: str, help_: str,
                    labels: Optional[Dict[str, str]], factory) -> object:
        key = _labels_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(type_, help_)
            elif family.type != type_:
                raise ValueError(
                    f"metric {name!r} already registered as {family.type}"
                )
            if help_ and not family.help:
                family.help = help_
            instrument = family.instruments.get(key)
            if instrument is None:
                instrument = family.instruments[key] = factory()
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._instrument(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, buckets: Sequence[float], help: str = "",
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        instrument = self._instrument(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )
        if instrument.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with other buckets"
            )
        return instrument

    # -- collectors ------------------------------------------------------------

    def register_collector(
        self,
        key: str,
        fn: Callable[..., Iterable[Sample]],
        owner: Optional[object] = None,
    ) -> None:
        """Attach a scrape-time sample source under ``key`` (last wins).

        With ``owner``, the registry holds only a weak reference and calls
        ``fn(owner)``; the collector silently disappears once the owner is
        garbage collected.  Without ``owner``, ``fn()`` is called and the
        collector lives until :meth:`unregister_collector`.
        """
        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._collectors[key] = (ref, fn)

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    # -- collection ------------------------------------------------------------

    def collect(self) -> List[Sample]:
        """Every current sample: instruments first, then live collectors.

        Histogram families are rendered as their Prometheus-style triple
        (``_bucket``/``_sum``/``_count``) so downstream renderers can stay
        sample-oriented.
        """
        with self._lock:
            families = {
                name: (f.type, f.help, dict(f.instruments))
                for name, f in self._families.items()
            }
            collectors = list(self._collectors.items())
        samples: List[Sample] = []
        for name, (type_, help_, instruments) in sorted(families.items()):
            for labels, instrument in instruments.items():
                if type_ == "histogram":
                    for bound, cumulative in instrument.cumulative():
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        samples.append(Sample(
                            f"{name}_bucket", float(cumulative),
                            labels + (("le", le),), "histogram", help_,
                        ))
                    samples.append(Sample(
                        f"{name}_sum", instrument.sum, labels, "histogram", help_
                    ))
                    samples.append(Sample(
                        f"{name}_count", float(instrument.count), labels,
                        "histogram", help_,
                    ))
                else:
                    samples.append(
                        Sample(name, float(instrument.value), labels, type_, help_)
                    )
        dead = []
        for key, (ref, fn) in collectors:
            if ref is None:
                samples.extend(fn())
                continue
            owner = ref()
            if owner is None:
                dead.append(key)
                continue
            samples.extend(fn(owner))
        if dead:
            with self._lock:
                for key in dead:
                    self._collectors.pop(key, None)
        return samples

    def snapshot(self) -> Dict[str, float]:
        """A flat ``{name{labels}: value}`` dict (JSON-friendly debugging)."""
        out = {}
        for sample in self.collect():
            if sample.labels:
                rendered = ",".join(f"{k}={v}" for k, v in sample.labels)
                out[f"{sample.name}{{{rendered}}}"] = sample.value
            else:
                out[sample.name] = sample.value
        return out
