"""Deterministic solver work budgets.

LeJIT bounds the worst-case decision latency of every solver query with
*deterministic* counters -- CDCL conflicts and decisions, simplex pivots,
DPLL(T) theory rounds, and branch-and-bound nodes -- never wall clock, so
budget exhaustion is exactly reproducible across runs and machines (two
runs with the same seed and budget report identical counts).

:class:`SolverBudget` is an immutable bag of per-query limits (``None`` =
unlimited).  :class:`BudgetMeter` is the mutable companion threaded through
the solver stack: it accumulates lifetime totals *and* enforces the budget
per query (a query is one :meth:`~repro.smt.solver.Solver.check`, spanning
all of its SAT rounds and theory calls).  Exhaustion never raises inside
the solver stack -- each layer returns a first-class UNKNOWN result that
callers must distinguish from UNSAT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional

__all__ = ["RESOURCES", "SolverBudget", "BudgetMeter"]

# Deterministic work counters, one per solver layer:
#   conflicts/decisions -- CDCL SAT core (repro.smt.sat)
#   pivots              -- exact simplex (repro.smt.lra)
#   theory_rounds       -- DPLL(T) loop (repro.smt.solver)
#   bb_nodes            -- LIA branch & bound (repro.smt.lia)
RESOURCES = ("conflicts", "decisions", "pivots", "theory_rounds", "bb_nodes")


@dataclass(frozen=True)
class SolverBudget:
    """Per-query work limits; ``None`` means unlimited for that resource."""

    max_conflicts: Optional[int] = None
    max_decisions: Optional[int] = None
    max_pivots: Optional[int] = None
    max_theory_rounds: Optional[int] = None
    max_bb_nodes: Optional[int] = None

    def limit(self, resource: str) -> Optional[int]:
        if resource not in RESOURCES:
            raise ValueError(f"unknown budget resource {resource!r}")
        return getattr(self, "max_" + resource)

    def is_unlimited(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def scaled(self, factor: float) -> "SolverBudget":
        """Every finite limit multiplied by ``factor`` (ceil, min 1)."""
        updates = {}
        for f in fields(self):
            value = getattr(self, f.name)
            updates[f.name] = (
                None if value is None else max(1, math.ceil(value * factor))
            )
        return SolverBudget(**updates)

    @staticmethod
    def default() -> "SolverBudget":
        """Generous per-query limits that still bound pathological queries.

        Sized so that normal LeJIT per-token queries (tens of conflicts,
        hundreds of pivots) never come close, while a blow-up is cut off in
        well under a second.
        """
        return SolverBudget(
            max_conflicts=20_000,
            max_decisions=50_000,
            max_pivots=200_000,
            max_theory_rounds=2_000,
            max_bb_nodes=5_000,
        )


class BudgetMeter:
    """Mutable work counters checked against a :class:`SolverBudget`.

    ``totals`` accumulate over the meter's lifetime (deterministic trace
    material); limits are enforced against the *per-query* delta, where a
    query window opens at :meth:`begin_query`.  A single meter may be
    shared by many solver instances -- queries are sequential, so one
    start-snapshot suffices.
    """

    def __init__(self, budget: Optional[SolverBudget] = None):
        self.budget = budget or SolverBudget()
        self.totals: Dict[str, int] = {r: 0 for r in RESOURCES}
        self._query_start: Dict[str, int] = dict(self.totals)
        self.exhaustions = 0
        self.last_exhausted: Optional[str] = None

    def set_budget(self, budget: Optional[SolverBudget]) -> None:
        self.budget = budget or SolverBudget()

    def begin_query(self) -> None:
        """Open a new per-query window (called on entry to ``check``)."""
        self._query_start = dict(self.totals)

    def charge(self, resource: str, amount: int = 1) -> bool:
        """Record ``amount`` units of work; False when the query is over
        budget for that resource (the caller must return UNKNOWN)."""
        self.totals[resource] += amount
        limit = self.budget.limit(resource)
        if limit is None:
            return True
        if self.totals[resource] - self._query_start[resource] > limit:
            self.exhaustions += 1
            self.last_exhausted = resource
            return False
        return True

    def query_spent(self, resource: str) -> int:
        return self.totals[resource] - self._query_start[resource]

    def snapshot(self) -> Dict[str, int]:
        """A copy of the lifetime totals (safe to store in traces)."""
        return dict(self.totals)

    def __repr__(self) -> str:
        spent = ", ".join(f"{r}={v}" for r, v in self.totals.items() if v)
        return f"BudgetMeter({spent or 'idle'})"
