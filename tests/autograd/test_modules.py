"""Module system, losses and optimizers."""

import numpy as np
import pytest

from repro.autograd import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    SGD,
    Sequential,
    Tensor,
    WarmupCosine,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cross_entropy,
    log_softmax,
    mse_loss,
)

RNG = np.random.default_rng(1)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=RNG)
        self.second = Linear(8, 2, rng=RNG)

    def forward(self, x):
        return self.second(self.first(x).tanh())


class TestModules:
    def test_parameter_registration_recursive(self):
        net = TwoLayer()
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_named_parameters(self):
        names = dict(TwoLayer().named_parameters())
        assert "first.weight" in names and "second.bias" in names

    def test_state_dict_roundtrip(self):
        net, clone = TwoLayer(), TwoLayer()
        clone.load_state_dict(net.state_dict())
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        assert np.allclose(net(Tensor(x)).data, clone(Tensor(x)).data)

    def test_state_dict_missing_key_raises(self):
        net = TwoLayer()
        state = net.state_dict()
        state.pop("first.weight")
        with pytest.raises(KeyError):
            TwoLayer().load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        net = TwoLayer()
        state = net.state_dict()
        state["first.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((7, 5)).astype(np.float32)))
        assert out.shape == (7, 3)

    def test_linear_without_bias(self):
        layer = Linear(5, 3, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        table = Embedding(10, 4, rng=RNG)
        out = table(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], table.weight.data[1])

    def test_embedding_gradient_accumulates_repeats(self):
        table = Embedding(5, 2, rng=RNG)
        out = table(np.array([1, 1, 1]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], [3.0, 3.0])

    def test_layernorm_normalizes(self):
        norm = LayerNorm(16)
        x = Tensor(RNG.standard_normal((4, 16)).astype(np.float32) * 5 + 3)
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_train_vs_eval(self):
        dropout = Dropout(0.5, rng=RNG)
        x = Tensor(np.ones((100, 100), dtype=np.float32), requires_grad=True)
        out_train = dropout(x)
        zero_fraction = float((out_train.data == 0).mean())
        assert 0.3 < zero_fraction < 0.7
        dropout.eval()
        assert np.allclose(dropout(x).data, x.data)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_sequential(self):
        net = Sequential(Linear(4, 8, rng=RNG), Linear(8, 2, rng=RNG))
        out = net(Tensor(RNG.standard_normal((3, 4)).astype(np.float32)))
        assert out.shape == (3, 2)
        assert len(net.parameters()) == 4

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Dropout(0.5))
        net.eval()
        assert not net.layers[0].training


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(RNG.standard_normal((6, 5)).astype(np.float32),
                        requires_grad=True)
        targets = RNG.integers(0, 5, 6)
        loss = cross_entropy(logits, targets)
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        manual = -np.mean(np.log(probs[np.arange(6), targets]))
        assert abs(loss.item() - manual) < 1e-5

    def test_cross_entropy_gradient(self):
        logits = Tensor(RNG.standard_normal((4, 3)).astype(np.float32),
                        requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        cross_entropy(logits, targets).backward()
        eps = 1e-3
        flat = logits.data.reshape(-1)
        for index in [0, 5, 11]:
            original = flat[index]
            flat[index] = original + eps
            up = cross_entropy(logits, targets).item()
            flat[index] = original - eps
            down = cross_entropy(logits, targets).item()
            flat[index] = original
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - logits.grad.reshape(-1)[index]) < 1e-2

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(RNG.standard_normal((4, 3)).astype(np.float32),
                        requires_grad=True)
        targets = np.array([0, -1, 2, -1])
        loss = cross_entropy(logits, targets, ignore_index=-1)
        loss.backward()
        # Ignored rows contribute zero gradient.
        assert np.allclose(logits.grad[1], 0.0)
        assert np.allclose(logits.grad[3], 0.0)

    def test_log_softmax_gradient(self):
        logits = Tensor(RNG.standard_normal((3, 4)).astype(np.float32),
                        requires_grad=True)
        weight = Tensor(RNG.standard_normal((3, 4)).astype(np.float32))
        (log_softmax(logits) * weight).sum().backward()
        assert logits.grad is not None
        assert logits.grad.shape == (3, 4)

    def test_mse(self):
        prediction = Tensor(np.array([1.0, 2.0], dtype=np.float32),
                            requires_grad=True)
        loss = mse_loss(prediction, np.array([0.0, 0.0]))
        assert abs(loss.item() - 2.5) < 1e-6

    def test_bce_with_logits_stable_at_extremes(self):
        logits = Tensor(np.array([100.0, -100.0], dtype=np.float32),
                        requires_grad=True)
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert loss.item() < 1e-6
        loss.backward()
        assert np.all(np.isfinite(logits.grad))


class TestOptim:
    def _loss_decreases(self, optimizer_factory):
        net = TwoLayer()
        optimizer = optimizer_factory(net.parameters())
        x = RNG.standard_normal((64, 4)).astype(np.float32)
        y = RNG.integers(0, 2, 64)
        first = None
        for _ in range(80):
            loss = cross_entropy(net(Tensor(x)), y)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return first, loss.item()

    def test_sgd_decreases_loss(self):
        first, last = self._loss_decreases(lambda p: SGD(p, lr=0.5, momentum=0.9))
        assert last < first * 0.9

    def test_adam_decreases_loss(self):
        first, last = self._loss_decreases(lambda p: Adam(p, lr=1e-2))
        assert last < first * 0.7

    def test_clip_grad_norm(self):
        param = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm > 1.0
        assert abs(np.linalg.norm(param.grad) - 1.0) < 1e-5

    def test_clip_noop_below_threshold(self):
        param = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        param.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, 0.1)

    def test_warmup_cosine_shape(self):
        optimizer = SGD([], lr=0.0)
        schedule = WarmupCosine(optimizer, base_lr=1.0, warmup_steps=10,
                                total_steps=100)
        rates = [schedule.step() for _ in range(100)]
        assert rates[0] < rates[9]  # warmup rises
        assert abs(rates[9] - 1.0) < 1e-6  # peak at base lr
        assert rates[-1] < 0.2  # decays toward min
        assert all(r > 0 for r in rates)

    def test_adam_weight_decay_shrinks_weights(self):
        param = Tensor(np.full(4, 10.0, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(4, dtype=np.float32)
        optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)
