"""Infeasibility diagnosis: *which rules* refuse a record prefix?

When a coarse prompt (or a partially generated record) admits no compliant
completion, operators need to know which rules conflict -- both to debug
mined rule sets and to decide what a fallback tier may drop.  This module
computes a *minimal* conflicting subset (an irreducible infeasible set over
the rules) by deletion-based shrinking over solver checks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..smt import FALSE, TRUE, IntVar, Le, Solver
from ..smt.simplify import simplify, substitute, to_nnf
from .dsl import Rule, RuleSet

__all__ = ["InfeasibilityReport", "diagnose_infeasibility"]

Bounds = Mapping[str, Tuple[int, int]]


class InfeasibilityReport:
    """A minimal set of rules that jointly refuse the fixed values."""

    def __init__(
        self,
        fixed: Dict[str, int],
        conflicting_rules: List[Rule],
        feasible: bool,
    ):
        self.fixed = fixed
        self.conflicting_rules = conflicting_rules
        self.feasible = feasible

    def __bool__(self) -> bool:
        return self.feasible

    def summary(self) -> str:
        if self.feasible:
            return f"feasible under all rules (fixed: {self.fixed})"
        lines = [f"infeasible given {self.fixed}; minimal conflict set:"]
        for rule in self.conflicting_rules:
            lines.append(f"  - {rule.name}: {rule.description or rule.formula!r}")
        return "\n".join(lines)


def _is_feasible(
    rules: Sequence[Rule], fixed: Mapping[str, int], bounds: Bounds
) -> bool:
    solver = Solver()
    for name, (low, high) in bounds.items():
        if name in fixed:
            if not low <= fixed[name] <= high:
                return False
            continue
        solver.add(Le(low, IntVar(name)))
        solver.add(Le(IntVar(name), high))
    for rule in rules:
        residual = simplify(to_nnf(substitute(rule.formula, fixed)))
        if residual == TRUE:
            continue
        if residual == FALSE:
            return False
        solver.add(residual)
    return solver.check().satisfiable


def diagnose_infeasibility(
    rules: RuleSet,
    fixed: Mapping[str, int],
    bounds: Bounds,
) -> InfeasibilityReport:
    """Explain why ``fixed`` admits no rule-compliant completion.

    Returns a feasible report when it actually does; otherwise shrinks the
    rule list to a minimal conflicting subset (every rule in the subset is
    necessary: removing any one restores feasibility *of the subset*).
    """
    fixed = {k: int(v) for k, v in fixed.items()}
    # Pre-filter: rules whose residual is TRUE under the fixed values can
    # never participate in the conflict, so shrinking skips them entirely.
    all_rules = [
        rule
        for rule in rules
        if simplify(to_nnf(substitute(rule.formula, fixed))) != TRUE
    ]
    if _is_feasible(all_rules, fixed, bounds):
        return InfeasibilityReport(fixed, [], feasible=True)
    # Deletion-based shrinking: try dropping each rule; keep it only if the
    # remainder becomes feasible (i.e. the rule is necessary).
    core: List[Rule] = list(all_rules)
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1 :]
        if _is_feasible(candidate, fixed, bounds):
            index += 1  # rule is necessary; keep it
        else:
            core = candidate  # rule is redundant for the conflict
    return InfeasibilityReport(fixed, core, feasible=False)
