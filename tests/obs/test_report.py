"""trace-report aggregation: per-stage tables and the solver-vs-LM split."""

from repro.obs import ManualClock, SpanTracer
from repro.obs.report import SOLVER_SPANS, aggregate, format_report


def _synthetic_trace():
    """Two records with known timing, plus one shared (batched) LM span."""
    clock = ManualClock()
    tracer = SpanTracer(clock=clock)

    rec1 = tracer.start("record")
    step1 = tracer.start("step", parent=rec1)
    lm1 = tracer.start("lm_forward", parent=rec1)
    clock.advance(0.010)
    tracer.end(lm1)
    fs1 = tracer.start("feasible_digits", parent=step1)
    clock.advance(0.020)
    tracer.end(fs1)
    confirm1 = tracer.start("smt_confirm", parent=step1)
    check1 = tracer.start("smt_check", parent=confirm1)
    clock.advance(0.030)
    tracer.end(check1)
    tracer.end(confirm1)
    tracer.end(step1)
    clock.advance(0.040)  # unattributed bookkeeping inside the record
    tracer.end(rec1)

    rec2 = tracer.start("record")
    repair2 = tracer.start("repair", parent=rec2)
    clock.advance(0.050)
    tracer.end(repair2)
    tracer.end(rec2)

    shared = tracer.start("lm_forward", parent=None, attrs={"rows": 2})
    clock.advance(0.005)
    tracer.end(shared)

    return tracer.drain(), rec1, rec2


class TestAggregate:
    def test_per_record_attribution(self):
        spans, rec1, rec2 = _synthetic_trace()
        report = aggregate(spans)
        assert report["records"] == 2
        rows = {row["record_span"]: row for row in report["per_record"]}
        r1 = rows[rec1]
        assert r1["steps"] == 1
        assert r1["lm_ms"] == 10.0
        # smt_check nests inside smt_confirm and must not double-bill:
        # solver time is feasible (20) + confirm (30), not + check (30).
        assert r1["solver_ms"] == 50.0
        assert r1["wall_ms"] == 100.0
        assert r1["other_ms"] == 40.0
        r2 = rows[rec2]
        assert r2["solver_ms"] == 50.0
        assert r2["lm_ms"] == 0.0

    def test_shared_lm_bucket_for_unparented_forwards(self):
        spans, _, _ = _synthetic_trace()
        totals = aggregate(spans)["totals"]
        assert totals["shared_lm_ms"] == 5.0
        assert totals["lm_ms"] == 15.0  # per-record 10 + shared 5
        assert totals["solver_ms"] == 100.0
        assert totals["lm_share"] + totals["solver_share"] == 1.0

    def test_stage_table_counts_every_span_name(self):
        spans, _, _ = _synthetic_trace()
        stages = aggregate(spans)["stages"]
        assert stages["record"]["count"] == 2
        assert stages["lm_forward"]["count"] == 2
        assert stages["smt_check"]["count"] == 1
        assert stages["smt_confirm"]["total_ms"] == 30.0
        assert stages["repair"]["max_ms"] == 50.0

    def test_smt_check_excluded_from_solver_spans(self):
        assert "smt_check" not in SOLVER_SPANS

    def test_orphan_spans_fall_into_shared_bucket(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        lm = tracer.start("lm_forward", parent=12345)  # parent never emitted
        clock.advance(0.008)
        tracer.end(lm)
        report = aggregate(tracer.drain())
        assert report["records"] == 0
        assert report["totals"]["shared_lm_ms"] == 8.0

    def test_format_report_renders_tables(self):
        spans, _, _ = _synthetic_trace()
        text = format_report(aggregate(spans))
        assert "2 records" in text
        assert "per-record breakdown" in text
        assert "shared_lm=5.00ms" in text
