"""Rule-set persistence tests."""

import json

import pytest

from repro.data import TelemetryConfig, build_dataset, fine_field, window_variables
from repro.rules import (
    MinerOptions,
    load_rules,
    mine_rules,
    paper_rules,
    rules_from_json,
    rules_to_json,
    save_rules,
)


class TestRuleIo:
    def test_roundtrip_paper_rules(self, tmp_path):
        rules = paper_rules(TelemetryConfig())
        path = tmp_path / "rules.json"
        save_rules(rules, path)
        restored = load_rules(path)
        assert len(restored) == len(rules)
        assert restored.name == rules.name
        for original in rules:
            copy = restored[original.name]
            assert copy.formula == original.formula
            assert copy.kind == original.kind
            assert copy.source == original.source
            assert copy.description == original.description

    def test_roundtrip_mined_rules_semantics(self, tmp_path):
        dataset = build_dataset(3, 1, 30, seed=8)
        assignments = [w.variables() for w in dataset.train_windows()]
        rules = mine_rules(
            assignments,
            list(window_variables(dataset.config.window)),
            MinerOptions(slack=1),
            fine_variables=[fine_field(t) for t in range(dataset.config.window)],
        )
        path = tmp_path / "mined.json"
        save_rules(rules, path)
        restored = load_rules(path)
        assert len(restored) == len(rules)
        for assignment in assignments[:30]:
            assert restored.violations(assignment) == []

    def test_format_guard(self):
        with pytest.raises(ValueError):
            rules_from_json(json.dumps({"format": "something-else", "rules": []}))

    def test_json_is_valid_and_versioned(self):
        text = rules_to_json(paper_rules())
        payload = json.loads(text)
        assert payload["format"] == "lejit-rules/1"
        assert len(payload["rules"]) == len(paper_rules())

    def test_missing_fields_default(self):
        payload = {
            "format": "lejit-rules/1",
            "rules": [
                {"name": "r", "formula": {"op": "true"}},
            ],
        }
        rules = rules_from_json(json.dumps(payload))
        assert rules["r"].kind == "generic"
        assert rules["r"].source == "manual"
