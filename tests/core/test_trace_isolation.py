"""Per-record trace lifecycle: deltas stay isolated, never accumulated.

Regression guard for the reuse paths (the batched engine and the serving
scheduler run many sessions over one enforcer/lane): each
:class:`~repro.core.session.RecordOutcome` must carry only ITS record's
wall time, LM steps, and solver work -- summing the per-record deltas must
reproduce the enforcer-level totals, and no outcome may silently absorb a
predecessor's spend.  Also covers the observability acceptance bar: span
tracing must not perturb enforcement output.
"""

import collections

import pytest

from repro.core import EnforcementEngine, EnforcerConfig, JitEnforcer
from repro.data import build_dataset
from repro.lm import NgramLM
from repro.obs import OBS, ManualClock, SpanTracer
from repro.rules import domain_bound_rules, paper_rules
from repro.smt import SolverBudget


@pytest.fixture(scope="module")
def setting():
    dataset = build_dataset(
        num_train_racks=4, num_test_racks=1, windows_per_rack=40, seed=5
    )
    model = NgramLM(order=6).fit(dataset.train_texts())
    return dataset, model, paper_rules(dataset.config)


def _enforcer(dataset, model, rules, seed=13, budget=None):
    return JitEnforcer(
        model,
        rules,
        dataset.config,
        EnforcerConfig(seed=seed, budget=budget),
        fallback_rules=[domain_bound_rules(dataset.config)],
    )


class TestPerRecordIsolation:
    def test_sync_path_deltas_sum_to_enforcer_totals(self, setting):
        dataset, model, rules = setting
        enforcer = _enforcer(
            dataset, model, rules, budget=SolverBudget.default()
        )
        coarse = [w.coarse() for w in dataset.test_windows()[:8]]
        outcomes = [enforcer.impute_record(c) for c in coarse]

        # Deltas, not cumulative: summed per-record solver work equals the
        # lane meter's lifetime totals exactly.
        summed = collections.Counter()
        for outcome in outcomes:
            summed.update(outcome.solver_work)
        meter = {k: v for k, v in enforcer.meter.snapshot().items() if v}
        assert dict(summed) == meter

        assert sum(o.lm_steps for o in outcomes) == enforcer.trace.lm_calls
        assert all(o.lm_steps > 0 for o in outcomes)
        assert all(o.wall_time > 0 for o in outcomes)
        assert sum(o.wall_time for o in outcomes) <= enforcer.trace.wall_time

    def test_reused_lane_does_not_accumulate_into_later_records(self, setting):
        """The regression: outcome N must not include records 0..N-1."""
        dataset, model, rules = setting
        enforcer = _enforcer(
            dataset, model, rules, budget=SolverBudget.default()
        )
        coarse = dataset.test_windows()[0].coarse()
        for _ in range(3):
            lm_before = enforcer.trace.lm_calls
            meter_before = dict(enforcer.meter.snapshot())
            outcome = enforcer.impute_record(coarse)
            # Each outcome's numbers equal the externally-measured delta
            # across exactly that call -- cumulative totals would diverge
            # from the second record on.
            assert outcome.lm_steps == enforcer.trace.lm_calls - lm_before
            expected = {
                resource: total - meter_before.get(resource, 0)
                for resource, total in enforcer.meter.snapshot().items()
                if total - meter_before.get(resource, 0)
            }
            assert outcome.solver_work == expected

    def test_batched_engine_outcomes_carry_per_record_deltas(self, setting):
        dataset, model, rules = setting
        enforcer = _enforcer(dataset, model, rules)
        engine = EnforcementEngine(enforcer, batch_size=4)
        coarse = [w.coarse() for w in dataset.test_windows()[:8]]
        outcomes = engine.impute_many(coarse)

        summed = collections.Counter()
        for outcome in outcomes:
            summed.update(outcome.solver_work)
        pooled = {k: v for k, v in engine.pool.solver_work().items() if v}
        # Lane meters only ever charge inside some session's resume window,
        # so the per-record deltas partition the pooled totals exactly.
        assert dict(summed) == pooled
        assert all(o.lm_steps > 0 for o in outcomes)
        assert all(o.wall_time >= 0 for o in outcomes)


class TestTracingIsInvisible:
    def teardown_method(self):
        OBS.disable()

    def test_enforced_output_is_identical_with_tracing_on(self, setting):
        dataset, model, rules = setting
        coarse = [w.coarse() for w in dataset.test_windows()[:6]]

        plain = _enforcer(dataset, model, rules)
        reference = [plain.impute_record(c) for c in coarse]

        OBS.enable(SpanTracer())
        traced = _enforcer(dataset, model, rules)
        observed = [traced.impute_record(c) for c in coarse]
        OBS.disable()

        assert [o.values for o in observed] == [o.values for o in reference]
        assert [o.stage for o in observed] == [o.stage for o in reference]
        assert (
            traced.trace.comparable_counters()
            == plain.trace.comparable_counters()
        )

    def test_record_spans_nest_step_and_solver_children(self, setting):
        dataset, model, rules = setting
        tracer = OBS.enable(SpanTracer())
        enforcer = _enforcer(dataset, model, rules)
        enforcer.impute_record(dataset.test_windows()[0].coarse())
        OBS.disable()

        spans = tracer.drain()
        by_name = collections.defaultdict(list)
        for span in spans:
            by_name[span["name"]].append(span)
        assert len(by_name["record"]) == 1
        record_id = by_name["record"][0]["span"]
        assert by_name["record"][0]["attrs"]["stage"] == "smt-confirm"
        step_ids = {span["span"] for span in by_name["step"]}
        assert by_name["step"], "no step spans emitted"
        for span in by_name["step"]:
            assert span["parent"] == record_id
        for name in ("feasible_digits", "smt_confirm"):
            assert by_name[name], f"no {name} spans emitted"
            for span in by_name[name]:
                assert span["parent"] in step_ids
        for span in by_name["lm_forward"]:
            assert span["parent"] == record_id
        assert tracer.open_spans == 0

    def test_batched_engine_emits_shared_lm_roots(self, setting):
        dataset, model, rules = setting
        tracer = OBS.enable(SpanTracer(ring_size=65536))
        enforcer = _enforcer(dataset, model, rules)
        engine = EnforcementEngine(enforcer, batch_size=4)
        engine.impute_many([w.coarse() for w in dataset.test_windows()[:4]])
        OBS.disable()

        spans = tracer.drain()
        forwards = [s for s in spans if s["name"] == "lm_forward"]
        assert forwards
        assert all(s["parent"] is None for s in forwards)
        assert all(s["attrs"]["rows"] >= 1 for s in forwards)
        records = [s for s in spans if s["name"] == "record"]
        assert len(records) == 4

    def test_wall_time_uses_the_injected_clock(self, setting):
        dataset, model, rules = setting
        clock = ManualClock()
        original = OBS.clock
        OBS.clock = clock
        try:
            enforcer = _enforcer(dataset, model, rules)
            outcome = enforcer.impute_record(
                dataset.test_windows()[0].coarse()
            )
            assert outcome.wall_time == 0.0  # the manual clock never moved
        finally:
            OBS.clock = original
